"""Unit tests for the analytical cost model (Section 6.1)."""

import pytest

from repro.costmodel.query_cost import (
    PaperQueryScenario,
    domain_query_cost,
    inter_domain_flooding_cost,
    total_query_cost,
)
from repro.costmodel.storage import (
    hierarchy_storage_cost,
    maximum_storage_cost,
    merged_storage_cost,
    node_count,
)
from repro.costmodel.update_cost import UpdateCostModel, update_cost
from repro.exceptions import ConfigurationError
from repro.fuzzy.vocabularies import medical_background_knowledge


class TestUpdateCost:
    def test_equation_one(self):
        assert update_cost(3600.0, 0.001) == pytest.approx(1 / 3600 + 0.001)

    def test_invalid_inputs_raise(self):
        with pytest.raises(ConfigurationError):
            update_cost(0, 0.1)
        with pytest.raises(ConfigurationError):
            update_cost(10, -1)

    def test_model_push_rate(self):
        model = UpdateCostModel(domain_size=100, lifetime_seconds=3600.0, alpha=0.3)
        assert model.push_rate_per_node() == pytest.approx(1 / 3600)

    def test_reconciliation_interval_scales_with_alpha(self):
        low = UpdateCostModel(domain_size=100, alpha=0.1)
        high = UpdateCostModel(domain_size=100, alpha=0.8)
        assert low.reconciliation_interval() < high.reconciliation_interval()

    def test_smaller_alpha_costs_more(self):
        low = UpdateCostModel(domain_size=100, alpha=0.3)
        high = UpdateCostModel(domain_size=100, alpha=0.8)
        assert low.cost_per_node_per_second() > high.cost_per_node_per_second()

    def test_per_node_cost_roughly_flat_in_domain_size(self):
        """Figure 6: messages per node are almost independent of the domain size."""
        small = UpdateCostModel(domain_size=100, alpha=0.3)
        large = UpdateCostModel(domain_size=2000, alpha=0.3)
        ratio = large.messages_per_node(3600.0) / small.messages_per_node(3600.0)
        assert 0.8 <= ratio <= 1.2

    def test_total_messages_grow_with_domain_size(self):
        small = UpdateCostModel(domain_size=100, alpha=0.3)
        large = UpdateCostModel(domain_size=1000, alpha=0.3)
        assert large.total_messages(3600.0) > small.total_messages(3600.0)

    def test_invalid_model_parameters(self):
        with pytest.raises(ConfigurationError):
            UpdateCostModel(domain_size=0)
        with pytest.raises(ConfigurationError):
            UpdateCostModel(domain_size=10, alpha=0.0)


class TestQueryCost:
    def test_domain_cost_formula(self):
        assert domain_query_cost(20, 0.0) == pytest.approx(41.0)
        assert domain_query_cost(20, 0.5) == pytest.approx(31.0)

    def test_domain_cost_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            domain_query_cost(-1)
        with pytest.raises(ConfigurationError):
            domain_query_cost(10, 1.5)

    def test_flooding_cost_formula(self):
        expected = (20 + 2) * (3.5 + 3.5**2 + 3.5**3)
        assert inter_domain_flooding_cost(20, 0.0, 3.5, 3) == pytest.approx(expected)

    def test_total_cost_single_domain_has_no_flooding(self):
        cost = total_query_cost(
            required_results=20, relevant_peers_per_domain=20, average_degree=3.5
        )
        assert cost == pytest.approx(domain_query_cost(20))

    def test_total_cost_paper_instantiation(self):
        """C_Q = 10 C_d + 9 C_f for the Section 6.2.3 scenario."""
        scenario = PaperQueryScenario(peer_count=2000)
        per_domain = scenario.relevant_peers_per_domain()
        expected = 10 * domain_query_cost(per_domain) + 9 * inter_domain_flooding_cost(
            per_domain
        )
        assert scenario.summary_querying_cost() == pytest.approx(expected)

    def test_total_cost_zero_responders_raises(self):
        with pytest.raises(ConfigurationError):
            total_query_cost(10, 0)

    def test_query_cost_grows_with_network(self):
        small = PaperQueryScenario(peer_count=500).summary_querying_cost()
        large = PaperQueryScenario(peer_count=5000).summary_querying_cost()
        assert large > small

    def test_false_positives_reduce_responses_but_not_queries(self):
        clean = domain_query_cost(10, 0.0)
        dirty = domain_query_cost(10, 0.3)
        assert dirty < clean


class TestStorageCost:
    def test_node_count_geometric_series(self):
        assert node_count(2, 3) == pytest.approx(15)
        assert node_count(4, 2) == pytest.approx(21)

    def test_node_count_unary_tree(self):
        assert node_count(1, 4) == pytest.approx(5)

    def test_hierarchy_storage_cost(self):
        assert hierarchy_storage_cost(4, 2, summary_size_bytes=512) == pytest.approx(
            512 * 21
        )

    def test_invalid_inputs_raise(self):
        with pytest.raises(ConfigurationError):
            node_count(0, 2)
        with pytest.raises(ConfigurationError):
            node_count(2, -1)
        with pytest.raises(ConfigurationError):
            hierarchy_storage_cost(2, 2, summary_size_bytes=0)

    def test_merged_cost_is_max(self):
        assert merged_storage_cost(1000, 2500) == 2500
        with pytest.raises(ConfigurationError):
            merged_storage_cost(-1, 10)

    def test_maximum_storage_bounded_by_grid(self):
        background = medical_background_knowledge(include_categorical=False)
        bound = maximum_storage_cost(background, summary_size_bytes=512)
        assert bound >= 512 * background.grid_size()
