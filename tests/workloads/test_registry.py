"""Tests for the named-scenario registry."""

import pytest

from repro.core.session import NetworkSession
from repro.exceptions import ConfigurationError
from repro.workloads.registry import ScenarioRegistry, default_registry
from repro.workloads.scenarios import SimulationScenario


class TestScenarioRegistry:
    def test_register_and_lookup(self):
        registry = ScenarioRegistry()
        registry.register(
            "tiny", lambda: SimulationScenario(peer_count=16), description="16 peers"
        )
        assert "tiny" in registry
        assert registry.names() == ["tiny"]
        assert registry.describe("tiny") == "16 peers"
        assert registry.scenario("tiny").peer_count == 16

    def test_register_as_decorator_uses_docstring(self):
        registry = ScenarioRegistry()

        @registry.register("documented")
        def _factory():
            """Documented scenario."""
            return SimulationScenario(peer_count=24)

        assert registry.describe("documented") == "Documented scenario."
        assert registry.scenario("documented").peer_count == 24

    def test_latest_registration_wins(self):
        registry = ScenarioRegistry()
        registry.register("name", lambda: SimulationScenario(peer_count=16))
        registry.register("name", lambda: SimulationScenario(peer_count=32))
        assert registry.scenario("name").peer_count == 32

    def test_unknown_name_lists_alternatives(self):
        registry = ScenarioRegistry()
        registry.register("only", lambda: SimulationScenario())
        with pytest.raises(ConfigurationError, match="only"):
            registry.scenario("missing")

    def test_overrides_replace_fields(self):
        registry = ScenarioRegistry()
        registry.register("base", lambda: SimulationScenario(peer_count=100))
        scenario = registry.scenario("base", peer_count=20, alpha=0.8, seed=5)
        assert (scenario.peer_count, scenario.alpha, scenario.seed) == (20, 0.8, 5)
        # The base factory is untouched.
        assert registry.scenario("base").peer_count == 100

    def test_unknown_override_rejected(self):
        registry = ScenarioRegistry()
        registry.register("base", lambda: SimulationScenario())
        with pytest.raises(ConfigurationError, match="no fields"):
            registry.scenario("base", peers=10)

    def test_overrides_are_validated_by_the_scenario(self):
        registry = ScenarioRegistry()
        registry.register("base", lambda: SimulationScenario())
        with pytest.raises(ConfigurationError):
            registry.scenario("base", alpha=5.0)


class TestDefaultRegistry:
    def test_builtin_scenarios_registered(self):
        registry = default_registry()
        for name in ("table3-default", "smoke", "maintenance", "query-cost"):
            assert name in registry
            assert registry.describe(name)

    def test_default_registry_is_a_singleton(self):
        assert default_registry() is default_registry()

    def test_session_from_named_scenario(self):
        session = default_registry().session("smoke", seed=11)
        assert isinstance(session, NetworkSession)
        assert session.overlay.size == 32
        answer = session.query(required_results=1)
        assert answer.results >= 1

    def test_single_domain_session_from_named_scenario(self):
        session = default_registry().single_domain_session(
            "maintenance", peer_count=24, seed=2
        )
        assert len(session.domains) == 1
        (domain,) = session.domains.values()
        assert len(domain.partner_ids) == session.overlay.size - 1
