"""Unit tests for workload and scenario generation."""

import pytest

from repro.database.query import DescriptorPredicate
from repro.exceptions import ConfigurationError
from repro.workloads.patients import (
    MedicalWorkload,
    build_peer_databases,
    matching_peer_plan,
)
from repro.workloads.queries import (
    QueryWorkload,
    paper_example_flexible_query,
    paper_example_query,
)
from repro.workloads.scenarios import (
    DEFAULT_ALPHAS,
    DEFAULT_DOMAIN_SIZES,
    SimulationScenario,
    table3_parameters,
)


class TestMedicalWorkload:
    def test_matching_fraction_respected(self, background):
        peers = [f"p{i}" for i in range(20)]
        workload = MedicalWorkload(records_per_peer=5, matching_fraction=0.2, seed=1)
        databases = build_peer_databases(peers, workload)
        query = paper_example_query()
        matching = [p for p in peers if databases[p].has_match(query)]
        assert len(matching) == 4

    def test_explicit_matching_peers(self):
        peers = [f"p{i}" for i in range(10)]
        databases = build_peer_databases(
            peers, MedicalWorkload(records_per_peer=4), matching_peers=["p3", "p7"]
        )
        query = paper_example_query()
        matching = {p for p in peers if databases[p].has_match(query)}
        assert matching == {"p3", "p7"}

    def test_every_peer_gets_requested_record_count(self):
        peers = ["a", "b", "c"]
        databases = build_peer_databases(peers, MedicalWorkload(records_per_peer=7))
        assert all(db.total_records() == 7 for db in databases.values())

    def test_matching_peer_plan(self):
        plan = matching_peer_plan([f"p{i}" for i in range(40)], 0.25, seed=2)
        assert len(plan) == 10

    def test_plan_reproducible(self):
        peers = [f"p{i}" for i in range(40)]
        assert matching_peer_plan(peers, 0.1, seed=3) == matching_peer_plan(
            peers, 0.1, seed=3
        )


class TestQueryWorkload:
    def test_paper_example_queries(self):
        crisp = paper_example_query()
        flexible = paper_example_flexible_query()
        assert crisp.relation == "patient"
        assert crisp.select == ("age",)
        assert flexible.is_flexible()
        assert {p.attribute for p in flexible.predicates} == {"sex", "bmi", "disease"}

    def test_generate_count(self):
        workload = QueryWorkload(query_count=25, seed=1)
        queries = workload.generate()
        assert len(queries) == 25

    def test_queries_are_flexible_and_well_formed(self, background):
        workload = QueryWorkload(query_count=30, seed=2, background=background)
        for query in workload.generate():
            assert query.is_flexible()
            assert 1 <= len(query.predicates) <= 3
            assert len(query.select) == 1
            for predicate in query.predicates:
                assert isinstance(predicate, DescriptorPredicate)
                for descriptor in predicate.descriptors:
                    assert background.has_descriptor(descriptor)

    def test_reproducible_with_seed(self):
        first = [str(q) for q in QueryWorkload(query_count=10, seed=5).generate()]
        second = [str(q) for q in QueryWorkload(query_count=10, seed=5).generate()]
        assert first == second

    def test_invalid_predicate_bounds_raise(self):
        with pytest.raises(ValueError):
            QueryWorkload(min_predicates=3, max_predicates=2)

    def test_query_rate_matches_table3(self):
        assert QueryWorkload().query_rate_per_peer_per_second == pytest.approx(1 / 1200)


class TestScenarios:
    def test_table3_parameters_content(self):
        parameters = table3_parameters()
        assert parameters["number_of_peers"] == (16, 5000)
        assert parameters["number_of_queries"] == 200
        assert parameters["matching_nodes_fraction"] == 0.10
        assert parameters["freshness_threshold_alpha"] == (0.1, 0.8)

    def test_default_sweeps_cover_paper_ranges(self):
        assert min(DEFAULT_DOMAIN_SIZES) == 16
        assert max(DEFAULT_DOMAIN_SIZES) == 5000
        assert 0.1 in DEFAULT_ALPHAS and 0.8 in DEFAULT_ALPHAS

    def test_invalid_scenario_raises(self):
        with pytest.raises(ConfigurationError):
            SimulationScenario(peer_count=1)
        with pytest.raises(ConfigurationError):
            SimulationScenario(alpha=0.0)

    def test_protocol_and_topology_configs(self):
        scenario = SimulationScenario(peer_count=64, alpha=0.5, seed=9)
        assert scenario.protocol_config().freshness_threshold == 0.5
        assert scenario.topology_config().peer_count == 64
        assert scenario.lifetime_distribution().median_seconds == 3600.0

    def test_build_system_planned_mode(self):
        scenario = SimulationScenario(peer_count=48, seed=1)
        system = scenario.build_system()
        assert system.overlay.size == 48
        assert system.content is not None
        assert len(system.domains) >= 1

    def test_build_single_domain_system(self):
        scenario = SimulationScenario(peer_count=48, seed=1)
        system = scenario.build_single_domain_system()
        assert len(system.domains) == 1
        domain = next(iter(system.domains.values()))
        assert len(domain.partner_ids) == 47

    def test_query_interval(self):
        scenario = SimulationScenario(peer_count=100)
        assert scenario.query_interval_seconds() == pytest.approx(12.0)
