"""Checkpoints travel across runtimes: capture mid-run, resume on either.

A checkpoint taken under one backend must restore and continue byte-identically
under the other — the runtime is recorded in the payload only when it differs
from the default, so pre-runtime checkpoints (and all simulator checkpoints)
keep their exact historical bytes.
"""

import pytest

from repro.core.session import SystemBuilder
from repro.runtime import ConcurrentBackend
from repro.store import InMemoryBackend
from repro.store.checkpoint import capture_session, restore_session
from repro.workloads.registry import default_registry

HORIZON = 1800.0
MIDPOINT = 900.0


def _build(runtime="simulator"):
    # The runtime is always pinned explicitly so these tests mean the same
    # thing under CI's REPRO_RUNTIME matrix (which flips the *default*).
    scenario = default_registry().scenario(
        "table3-default", peer_count=32, duration_seconds=HORIZON
    )
    builder = scenario.builder().runtime(runtime)
    return scenario.apply_dynamics(builder).build()


def _finish(session, queries=4):
    session.run_until(HORIZON)
    return {
        "answers": session.query_batch(count=queries, required_results=3),
        "counter": session.system.counter.state_payload(),
        "now": session.now,
    }


def _checkpoint_midrun(runtime="simulator"):
    session = _build(runtime=runtime)
    session.run_until(MIDPOINT)
    backend = InMemoryBackend()
    session.checkpoint(backend, name="mid")
    return session, backend


def test_simulator_checkpoint_resumes_on_both_backends():
    live, backend = _checkpoint_midrun()
    reference = _finish(live)

    on_simulator = _finish(restore_session(backend, name="mid"))
    on_concurrent = _finish(
        restore_session(
            backend,
            name="mid",
            runtime=ConcurrentBackend(
                io_model=lambda label: 0.0001 if label == "modification" else 0.0
            ),
        )
    )
    assert on_simulator == reference
    assert on_concurrent == reference


def test_concurrent_checkpoint_records_and_restores_its_runtime():
    live, backend = _checkpoint_midrun(runtime="concurrent")
    assert live.runtime.name == "concurrent"
    reference = _finish(live)

    resumed = restore_session(backend, name="mid")
    assert resumed.runtime.name == "concurrent"
    back_on_simulator = restore_session(backend, name="mid", runtime="simulator")
    assert back_on_simulator.runtime.name == "simulator"

    assert _finish(resumed) == reference
    assert _finish(back_on_simulator) == reference


def test_simulator_checkpoint_payload_has_no_runtime_key():
    """Default-backend payloads keep their pre-runtime-layer bytes."""
    live, _backend = _checkpoint_midrun()
    payload, _store = capture_session(live)
    assert "runtime" not in payload

    concurrent_live, _ = _checkpoint_midrun(runtime="concurrent")
    payload, _store = capture_session(concurrent_live)
    assert payload["runtime"] == "concurrent"


def test_from_checkpoint_accepts_runtime_override():
    _live, backend = _checkpoint_midrun()
    restored = SystemBuilder.from_checkpoint(backend, name="mid", runtime="concurrent")
    assert restored.runtime.name == "concurrent"
