"""Runtime equivalence: the concurrent backend answers like the simulator.

The whole contract of :mod:`repro.runtime` is that the execution backend is
an *implementation* knob: answers (including degradation reports), message
counter totals, virtual clocks and RNG states must be equal whichever backend
drains the events.  Pinned here on the three named scenarios the issue calls
out — the fig4-style benign run, the lossy chaos run and the partition/heal
run — with an I/O model installed so the concurrent backend actually
exercises its windowed fan-out path, not just the degenerate serial one.
"""

import pytest

from repro.runtime import ConcurrentBackend, SimulatorBackend
from repro.workloads.registry import default_registry

#: (scenario name, overrides): trimmed enough to stay test-sized while still
#: crossing every interesting phase (the partition trim keeps the 4800 s heal).
SCENARIOS = [
    ("table3-default", {"peer_count": 48, "duration_seconds": 1800.0}),
    ("lossy-network", {"peer_count": 48, "duration_seconds": 3600.0}),
    ("partition-heal", {"peer_count": 48, "duration_seconds": 5400.0}),
]


def _io_model(label):
    """A tiny I/O cost on maintenance-shaped events: enough to trigger fan-out.

    Scenario runs schedule churn and content-modification events (each
    modification fans out push/reconciliation traffic when executed), so
    those are the labels that would wait on I/O in a deployed system.
    """
    return 0.0001 if label in ("modification", "departure", "rejoin") else 0.0


def _build(name, overrides, runtime=None):
    scenario = default_registry().scenario(name, **overrides)
    builder = scenario.builder()
    if runtime is not None:
        builder = builder.runtime(runtime)
    return scenario.apply_dynamics(builder).build()


def _fingerprint(session, queries=6):
    session.run_until()
    answers = session.query_batch(count=queries, required_results=3)
    fingerprint = {
        "answers": answers,
        "degradation": [answer.degradation for answer in answers],
        "counter": session.system.counter.state_payload(),
        "now": session.now,
        "processed": session.runtime.processed_events,
    }
    content = session.content
    if content is not None and hasattr(content, "_rng"):
        fingerprint["content_rng"] = content._rng.getstate()  # noqa: SLF001
    faults = session.system.faults
    if faults is not None:
        fingerprint["faults_rng"] = faults.rng.getstate()
    return fingerprint


@pytest.mark.parametrize("name,overrides", SCENARIOS)
def test_concurrent_backend_matches_simulator(name, overrides):
    backend = ConcurrentBackend(io_model=_io_model, quantum_seconds=120.0)
    concurrent = _fingerprint(_build(name, overrides, runtime=backend))
    simulator = _fingerprint(_build(name, overrides))

    assert concurrent["answers"] == simulator["answers"]
    assert concurrent["degradation"] == simulator["degradation"]
    assert concurrent["counter"] == simulator["counter"]
    assert concurrent["now"] == simulator["now"]
    assert concurrent["processed"] == simulator["processed"]
    for key in ("content_rng", "faults_rng"):
        assert concurrent.get(key) == simulator.get(key), f"{key} diverged"

    # The comparison proves nothing if the fan-out path never ran.
    assert backend.fanout_rounds > 0
    assert backend.overlapped_events > 0


def test_simulator_backend_with_io_model_is_still_identical():
    """Sleeping between events must not leak into any virtual state."""
    name, overrides = SCENARIOS[0]
    slept = _fingerprint(
        _build(name, overrides, runtime=SimulatorBackend(io_model=_io_model))
    )
    plain = _fingerprint(_build(name, overrides))
    assert slept["answers"] == plain["answers"]
    assert slept["counter"] == plain["counter"]
    assert slept["now"] == plain["now"]


def test_concurrent_seed_determinism():
    """Two identically-seeded concurrent runs are byte-identical."""
    name, overrides = SCENARIOS[1]
    prints = [
        _fingerprint(
            _build(
                name,
                overrides,
                runtime=ConcurrentBackend(io_model=_io_model, max_concurrency=4),
            )
        )
        for _run in range(2)
    ]
    assert prints[0]["answers"] == prints[1]["answers"]
    assert prints[0]["counter"] == prints[1]["counter"]
    assert prints[0].get("content_rng") == prints[1].get("content_rng")
