"""Unit surface of the runtime package: resolution, delivery, knobs, windows."""

import asyncio

import pytest

from repro.exceptions import ConfigurationError
from repro.runtime import (
    RUNTIME_ENV_VAR,
    ConcurrentBackend,
    ExecutionBackend,
    SimulatorBackend,
    create_backend,
)


class TestCreateBackend:
    def test_default_is_simulator(self, monkeypatch):
        monkeypatch.delenv(RUNTIME_ENV_VAR, raising=False)
        assert isinstance(create_backend(), SimulatorBackend)

    def test_env_var_overrides_default(self, monkeypatch):
        monkeypatch.setenv(RUNTIME_ENV_VAR, "concurrent")
        assert isinstance(create_backend(), ConcurrentBackend)
        # An explicit spec always wins over the environment.
        assert isinstance(create_backend("simulator"), SimulatorBackend)

    @pytest.mark.parametrize(
        "name,cls",
        [
            ("simulator", SimulatorBackend),
            ("sim", SimulatorBackend),
            ("concurrent", ConcurrentBackend),
            ("async", ConcurrentBackend),
            ("ASYNCIO", ConcurrentBackend),
        ],
    )
    def test_names_resolve(self, name, cls):
        assert isinstance(create_backend(name), cls)

    def test_instance_passes_through(self):
        backend = ConcurrentBackend(max_concurrency=2)
        assert create_backend(backend) is backend

    def test_unknown_name_raises_typed_error(self):
        with pytest.raises(ConfigurationError, match="unknown runtime"):
            create_backend("threads")

    def test_bad_env_value_raises_typed_error(self, monkeypatch):
        monkeypatch.setenv(RUNTIME_ENV_VAR, "warp-drive")
        with pytest.raises(ConfigurationError, match="unknown runtime"):
            create_backend()


class TestKnobValidation:
    def test_bad_drain_mode(self):
        with pytest.raises(ConfigurationError, match="drain"):
            ConcurrentBackend(drain="racy")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_concurrency": 0},
            {"mailbox_capacity": 0},
            {"quantum_seconds": 0.0},
            {"quantum_seconds": -5.0},
        ],
    )
    def test_bad_numeric_knobs(self, kwargs):
        with pytest.raises(ConfigurationError):
            ConcurrentBackend(**kwargs)


class TestDelivery:
    @pytest.mark.parametrize("cls", [SimulatorBackend, ConcurrentBackend])
    def test_dedup_key_suppresses_within_ttl(self, cls):
        backend = cls(duplicate_ttl_seconds=10.0)
        hits = []
        first = backend.deliver(1.0, lambda: hits.append("a"), dedup_key="m1")
        duplicate = backend.deliver(2.0, lambda: hits.append("b"), dedup_key="m1")
        assert first is not None
        assert duplicate is None
        assert backend.suppressed_deliveries == 1
        backend.run(until=5.0)
        assert hits == ["a"]

    @pytest.mark.parametrize("cls", [SimulatorBackend, ConcurrentBackend])
    def test_dedup_expires_on_virtual_time(self, cls):
        backend = cls(duplicate_ttl_seconds=10.0)
        backend.deliver(0.5, lambda: None, dedup_key="m1")
        backend.run(until=30.0)  # the suppression window lapses virtually
        assert backend.deliver(0.5, lambda: None, dedup_key="m1") is not None
        assert backend.suppressed_deliveries == 0

    def test_deliveries_without_dedup_key_are_never_suppressed(self):
        backend = SimulatorBackend()
        assert backend.deliver(1.0, lambda: None) is not None
        assert backend.deliver(1.0, lambda: None) is not None
        assert backend.suppressed_deliveries == 0


class TestExecution:
    def test_simulator_io_model_preserves_virtual_clock(self):
        ticks = []
        backend = SimulatorBackend(io_model=lambda label: 0.0001)
        backend.schedule(1.0, lambda: ticks.append(backend.now), label="t")
        backend.schedule(2.0, lambda: ticks.append(backend.now), label="t")
        assert backend.run(until=10.0) == 2
        assert ticks == [1.0, 2.0]
        assert backend.now == 10.0

    def test_concurrent_ordered_drain_respects_sequence_order(self):
        backend = ConcurrentBackend(io_model=lambda label: 0.0001, quantum_seconds=5.0)
        order = []
        for index in range(6):
            backend.deliver(
                1.0, lambda i=index: order.append(i), label="m", actor=f"p{index % 2}"
            )
        backend.run(until=10.0)
        assert order == list(range(6))
        assert backend.overlapped_events == 6
        assert backend.fanout_rounds >= 1

    def test_concurrent_without_io_model_never_spins_a_loop(self):
        backend = ConcurrentBackend()
        backend.schedule(1.0, lambda: None)
        assert backend.run(until=2.0) == 1
        assert backend.fanout_rounds == 0

    def test_concurrent_max_events_budget_drains_serially(self):
        backend = ConcurrentBackend(io_model=lambda label: 0.5)
        for _ in range(3):
            backend.schedule(1.0, lambda: None)
        assert backend.run(max_events=2) == 2
        assert backend.pending_events == 1
        assert backend.fanout_rounds == 0  # the budgeted path skips fan-out

    def test_concurrent_inside_running_loop_falls_back_inline(self):
        backend = ConcurrentBackend(io_model=lambda label: 0.5)
        backend.schedule(1.0, lambda: None)

        async def drive():
            return backend.run(until=2.0)

        assert asyncio.run(drive()) == 1
        assert backend.fanout_rounds == 0

    def test_actor_tags_are_pruned_and_cleared(self):
        backend = ConcurrentBackend(io_model=lambda label: 0.0)
        for index in range(10):
            backend.schedule(1.0, lambda: None, actor=f"p{index}")
        assert len(backend._actors) == 10  # noqa: SLF001
        backend.reset()
        assert backend._actors == {}  # noqa: SLF001

    def test_create_rng_streams_are_seed_equal_across_backends(self):
        sim = SimulatorBackend().create_rng(42)
        conc = ConcurrentBackend().create_rng(42)
        assert [sim.random() for _ in range(5)] == [conc.random() for _ in range(5)]

    def test_base_run_is_abstract(self):
        with pytest.raises(NotImplementedError):
            ExecutionBackend().run()
