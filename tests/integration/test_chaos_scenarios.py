"""Chaos matrix: every named adversity scenario keeps answering accurately.

Each registered adversity scenario (partitions, massacres, flash crowds,
lossy links, correlated domain failures) is run through its full horizon
with queries fired at several points.  The invariants are the robustness
acceptance criteria: every query returns a :class:`QueryAnswer` whose
degradation report accounts for every domain (visited or marked
unreachable, never both, never neither), and the retry machinery keeps
message overhead bounded by the configured budgets.
"""

import pytest

from repro.workloads.registry import ADVERSITY_SCENARIOS, default_registry

#: pytest ``-k`` cannot select hyphenated ids, so the CI chaos matrix keys
#: jobs by these underscore forms.
SCENARIO_IDS = [name.replace("-", "_") for name in ADVERSITY_SCENARIOS]


def _assert_answer_invariants(session, answer):
    system = session.system
    report = answer.degradation
    assert report is not None
    visited = {outcome.domain_id for outcome in answer.routing.domain_outcomes}
    unreachable = set(report.unreachable_domains)
    all_domains = set(system.domains)
    assert visited | unreachable == all_domains
    assert not visited & unreachable
    # A marked-partial answer and an unreachable list agree with each other.
    assert report.complete == (not unreachable)
    assert report.probe_messages == answer.routing.unreachable_probe_messages
    if unreachable:
        budget = 1 + system.config.query_max_retries
        assert report.probe_messages == budget * len(unreachable)


@pytest.mark.parametrize(
    "name", ADVERSITY_SCENARIOS, ids=SCENARIO_IDS
)
def test_adversity_scenario_answers_stay_marked_and_bounded(name):
    scenario = default_registry().scenario(name, seed=11)
    session = scenario.apply_dynamics(scenario.builder()).build()
    horizon = scenario.duration_seconds
    system = session.system

    answers = []
    # Query at several points of the horizon so faults are hit while armed,
    # mid-flight, and after healing/rejoin.
    for fraction in (0.3, 0.5, 0.8, 1.0):
        session.run_until(horizon * fraction)
        for answer in session.query_batch(count=5):
            _assert_answer_invariants(session, answer)
            answers.append(answer)

    assert len(answers) == 20

    # Retry/backoff bounds the overhead: every retry burst is capped by the
    # largest configured budget, so the total can never exceed the cap times
    # the number of fault-charged transmissions.
    counter = system.counter
    config = system.config
    max_budget = max(
        config.push_max_retries,
        config.reconciliation_max_retries,
        config.query_max_retries,
    )
    assert counter.retry_total <= max_budget * max(1, counter.dropped_total)
    # Dropped messages are all attributed to a reason.
    assert sum(counter.dropped_by_reason().values()) == counter.dropped_total
    faults = system.faults
    assert faults is not None
    assert faults.stats.messages_dropped <= counter.dropped_total


def test_chaos_matrix_covers_every_registered_adversity():
    registry = default_registry()
    for name in ADVERSITY_SCENARIOS:
        scenario = registry.scenario(name)
        assert scenario.fault_plan is not None
        assert scenario.fault_plan.any_faults()
