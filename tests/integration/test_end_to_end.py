"""End-to-end integration scenarios exercising the whole stack.

These tests run the complete story of the paper over a small network with
*real* data: peers own Patient databases, build local summaries, a superpeer
overlay forms domains and merges global summaries, queries are reformulated,
routed through summaries, answered approximately, and the system survives
churn and reconciliations.
"""

import pytest

from repro.core.approximate import answer_in_domain
from repro.core.config import ProtocolConfig
from repro.core.protocol import SummaryManagementSystem
from repro.core.routing import RoutingPolicy
from repro.database.query import Comparison, SelectionQuery
from repro.fuzzy.vocabularies import medical_background_knowledge
from repro.network.overlay import Overlay
from repro.network.topology import TopologyConfig
from repro.workloads.patients import MedicalWorkload, build_peer_databases
from repro.workloads.queries import QueryWorkload, paper_example_query


@pytest.fixture(scope="module")
def deployed_system():
    """A 32-peer network with real databases, summaries and domains."""
    overlay = Overlay.generate(TopologyConfig(peer_count=32, seed=21))
    background = medical_background_knowledge()
    config = ProtocolConfig(superpeer_fraction=1 / 8, construction_ttl=3)
    system = SummaryManagementSystem(
        overlay, config=config, background=background, seed=21
    )
    workload = MedicalWorkload(records_per_peer=8, matching_fraction=0.25, seed=21)
    databases = build_peer_databases(overlay.peer_ids, workload)
    system.attach_databases(databases)
    system.build_domains()
    return system, databases, background


class TestDeployment:
    def test_every_peer_summarized_its_database(self, deployed_system):
        system, databases, _background = deployed_system
        summaries = system.local_summaries()
        assert set(summaries) == set(databases)
        for peer_id, summary in summaries.items():
            assert summary.records_processed == databases[peer_id].total_records()
            assert summary.peer_extent() == {peer_id}

    def test_domains_cover_the_network(self, deployed_system):
        system, _databases, _background = deployed_system
        members = set(system.domains)
        for domain in system.domains.values():
            members |= set(domain.partner_ids)
        assert members == set(system.overlay.peer_ids)

    def test_global_summaries_describe_their_partners(self, deployed_system):
        system, _databases, _background = deployed_system
        for domain in system.domains.values():
            if not domain.partner_ids:
                continue
            assert domain.has_global_summary()
            assert set(domain.partner_ids) <= domain.coverage()


class TestQueryProcessingEndToEnd:
    def test_peer_localization_has_no_false_negatives(self, deployed_system):
        system, databases, _background = deployed_system
        query = paper_example_query()
        originator = next(iter(system.assignment))
        result = system.pose_query(originator, query=query)
        truly_matching = {
            peer_id for peer_id, db in databases.items() if db.has_match(query)
        }
        # Every matching partner peer is found (summaries add no false negatives).
        assert truly_matching - set(system.domains) <= result.responding_peers
        assert result.false_negative_rate == 0.0

    def test_summary_routing_contacts_fewer_peers_than_broadcast(self, deployed_system):
        system, _databases, _background = deployed_system
        query = paper_example_query()
        originator = next(iter(system.assignment))
        result = system.pose_query(originator, query=query)
        assert len(result.contacted_peers) < system.overlay.size

    def test_approximate_answer_matches_ground_truth_labels(self, deployed_system):
        system, databases, background = deployed_system
        query = paper_example_query()
        # Ground truth: ages of matching records across all databases.
        matching_ages = [
            row["age"]
            for db in databases.values()
            for row in db.execute(query)
        ]
        assert matching_ages  # the workload guarantees some matches
        domain = next(d for d in system.domains.values() if d.has_global_summary())
        answer = answer_in_domain(domain, query, background).answer
        if not answer.is_empty:
            labels = answer.merged_output()["age"]
            # Every label returned must describe at least one true matching age.
            age_variable = background.variable("age")
            for label in labels:
                assert any(
                    age_variable.grade(label, age) > 0 for age in matching_ages
                )

    def test_workload_queries_run_through_the_system(self, deployed_system):
        system, _databases, background = deployed_system
        workload = QueryWorkload(query_count=10, seed=3, background=background)
        originator = next(iter(system.assignment))
        for query in workload.generate():
            result = system.pose_query(originator, query=query, max_domains=2)
            assert result.total_messages >= 1

    def test_unsatisfiable_attribute_query_is_rejected(self, deployed_system):
        system, _databases, background = deployed_system
        domain = next(d for d in system.domains.values() if d.has_global_summary())
        query = SelectionQuery("patient", [Comparison("age", ">", 1000)])
        from repro.exceptions import QueryError

        with pytest.raises(QueryError):
            answer_in_domain(domain, query, background)


class TestChurnEndToEnd:
    def test_system_survives_churn_and_reconciliation(self):
        overlay = Overlay.generate(TopologyConfig(peer_count=40, seed=22))
        background = medical_background_knowledge()
        config = ProtocolConfig(superpeer_fraction=1 / 10, freshness_threshold=0.2)
        system = SummaryManagementSystem(
            overlay, config=config, background=background, seed=22
        )
        databases = build_peer_databases(
            overlay.peer_ids, MedicalWorkload(records_per_peer=5, seed=22)
        )
        system.attach_databases(databases)
        system.build_domains()

        system.schedule_churn(4 * 3600.0, graceful_fraction=0.8)
        system.run()

        # Domains are still internally consistent after churn.  (A domain may
        # temporarily keep a stale entry for a peer that re-joined elsewhere —
        # that is the paper's behaviour until the next reconciliation — but
        # every assignment must point to a live domain that lists the peer.)
        for sp_id, domain in system.domains.items():
            domain.validate()
        for peer_id, sp_id in system.assignment.items():
            assert sp_id in system.domains
            assert system.domains[sp_id].is_partner(peer_id)
        # Queries still work after churn.
        online_partners = [
            p
            for p, sp in system.assignment.items()
            if system.overlay.peer(p).online and sp in system.domains
        ]
        if online_partners:
            result = system.pose_query(online_partners[0], query=paper_example_query())
            assert result.total_messages >= 1
