"""Equivalence suite: the query engine across the figure scenarios.

Runs miniature fig4/fig5 (single-domain maintenance + staleness sampling)
and fig7 (multi-domain query cost) flows twice — once through the indexed,
memoized, batched fast path and once through the legacy per-query path
(``query_engine_enabled = False``, sequential posing) — and asserts every
protocol-visible outcome is byte-identical: routing sets, message counts,
flooding figures and staleness snapshots.
"""

from __future__ import annotations

import pytest

from repro.core.routing import QueryRequest, RoutingPolicy
from repro.experiments.runner import run_maintenance_simulation
from repro.workloads.registry import default_registry


def _maintenance_session(seed: int, engine: bool):
    scenario = default_registry().scenario(
        "maintenance", peer_count=32, duration_seconds=2 * 3600.0, seed=seed
    )
    session = scenario.apply_dynamics(scenario.single_domain_builder()).build()
    session.system.query_engine_enabled = engine
    return session


def _query_cost_session(seed: int, engine: bool):
    scenario = default_registry().scenario("query-cost", peer_count=64, seed=seed)
    session = scenario.session()
    session.system.query_engine_enabled = engine
    return session


class TestFig4Fig5Staleness:
    @pytest.mark.parametrize("seed", [0, 9])
    def test_staleness_sampling_identical(self, seed):
        fast = _maintenance_session(seed, engine=True)
        legacy = _maintenance_session(seed, engine=False)

        time = 1200.0
        while time <= 2 * 3600.0:
            fast.run_until(time)
            legacy.run_until(time)
            batched = fast.staleness_batch(3)
            sequential = [legacy.staleness() for _ in range(3)]
            assert batched == sequential, f"staleness diverged at t={time:.0f}s"
            time += 1200.0

        assert fast.system.counter.by_type() == legacy.system.counter.by_type()
        assert fast.maintenance_report().push_messages == (
            legacy.maintenance_report().push_messages
        )

    def test_runner_driver_matches_manual_sampling(self):
        """The fig4/fig5 driver (batched staleness) reproduces itself exactly."""
        scenario = default_registry().scenario(
            "maintenance", peer_count=32, duration_seconds=3600.0, seed=4
        )
        a = run_maintenance_simulation(scenario)
        b = run_maintenance_simulation(scenario)
        assert a.snapshots == b.snapshots
        assert a.update_messages == b.update_messages


class TestFig7QueryCost:
    @pytest.mark.parametrize("seed", [0, 5])
    def test_batched_fast_path_matches_legacy_sequential(self, seed):
        fast = _query_cost_session(seed, engine=True)
        legacy = _query_cost_session(seed, engine=False)
        required = max(1, round(0.1 * 64))

        originators = fast.partner_ids()
        requests = [
            QueryRequest(
                originator=originators[(7 * index) % len(originators)],
                query_id=fast.next_query_id(),
                policy=RoutingPolicy.ALL,
                required_results=required,
            )
            for index in range(10)
        ]
        fast_answers = fast.query_batch(requests=requests, include_staleness=False)

        legacy_answers = []
        legacy_originators = legacy.partner_ids()
        for index in range(10):
            originator = legacy_originators[(7 * index) % len(legacy_originators)]
            legacy_answers.append(
                legacy.query(
                    originator,
                    query_id=legacy.next_query_id(),
                    policy=RoutingPolicy.ALL,
                    required_results=required,
                    include_staleness=False,
                )
            )

        assert [a.routing for a in fast_answers] == [
            a.routing for a in legacy_answers
        ]
        assert [a.routing.flooding_messages for a in fast_answers] == [
            a.routing.flooding_messages for a in legacy_answers
        ]
        assert fast.system.counter.by_type() == legacy.system.counter.by_type()

    def test_fig7_driver_deterministic(self):
        from repro.experiments.runner import run_query_cost_comparison

        a = run_query_cost_comparison(peer_count=64, query_count=8, seed=2)
        b = run_query_cost_comparison(peer_count=64, query_count=8, seed=2)
        assert a.summary_querying_messages == b.summary_querying_messages
        assert a.flooding_messages == b.flooding_messages
        assert a.centralized_messages == b.centralized_messages
