"""Unit tests for the centralized-index baseline."""

import pytest

from repro.baselines.centralized import CentralizedIndex, centralized_query_cost
from repro.core.content import PlannedContentModel


class TestCentralizedIndex:
    def test_exact_relevant_set(self):
        peers = [f"p{i}" for i in range(50)]
        content = PlannedContentModel(peers, matching_fraction=0.1, seed=1)
        index = CentralizedIndex()
        outcome = index.query(peers, "p0", content, query_id=0)
        assert outcome.relevant_peers == content.plan_query(0)
        assert outcome.responding_peers == outcome.relevant_peers

    def test_message_count_formula(self):
        peers = [f"p{i}" for i in range(50)]
        content = PlannedContentModel(peers, matching_fraction=0.1, seed=2)
        index = CentralizedIndex()
        outcome = index.query(peers, "p0", content, query_id=0)
        assert outcome.total_messages == 1 + 2 * len(outcome.relevant_peers)

    def test_departed_peers_not_returned(self):
        peers = [f"p{i}" for i in range(30)]
        content = PlannedContentModel(peers, matching_fraction=0.2, seed=3)
        victim = next(iter(content.plan_query(0)))
        content.mark_departed(victim)
        outcome = CentralizedIndex().query(peers, "p0", content, query_id=0)
        assert victim not in outcome.relevant_peers

    def test_counter_records_traffic(self):
        peers = [f"p{i}" for i in range(10)]
        content = PlannedContentModel(peers, matching_fraction=0.5, seed=4)
        index = CentralizedIndex()
        index.query(peers, "p0", content, 0)
        assert index.counter.total > 0


class TestAnalyticalCost:
    def test_formula(self):
        assert centralized_query_cost(2000, 0.1) == pytest.approx(401.0)

    def test_scales_linearly(self):
        assert centralized_query_cost(1000) * 2 - 1 == pytest.approx(
            centralized_query_cost(2000)
        )
