"""Unit tests for the pure-flooding baseline."""

import pytest

from repro.baselines.flooding import FloodingSearch, flooding_query_cost
from repro.core.content import PlannedContentModel
from repro.network.overlay import Overlay
from repro.network.topology import TopologyConfig


@pytest.fixture
def overlay():
    return Overlay.generate(TopologyConfig(peer_count=100, seed=6))


@pytest.fixture
def content(overlay):
    return PlannedContentModel(overlay.peer_ids, matching_fraction=0.2, seed=6)


class TestFloodingSearch:
    def test_invalid_ttl_raises(self):
        with pytest.raises(ValueError):
            FloodingSearch(ttl=0)

    def test_ttl_bounded_flood(self, overlay, content):
        search = FloodingSearch(ttl=2)
        outcome = search.query(overlay, overlay.peer_ids[0], content, query_id=0)
        reached_by_bfs = set(overlay.within_ttl(overlay.peer_ids[0], 2))
        assert outcome.reached_peers == reached_by_bfs
        assert outcome.query_messages >= len(outcome.reached_peers)

    def test_responses_come_from_matching_reached_peers(self, overlay, content):
        search = FloodingSearch(ttl=3)
        outcome = search.query(overlay, overlay.peer_ids[0], content, query_id=0)
        matching = content.plan_query(0)
        assert outcome.responding_peers == outcome.reached_peers & matching
        assert outcome.response_messages == len(outcome.responding_peers)

    def test_total_messages(self, overlay, content):
        search = FloodingSearch(ttl=2)
        outcome = search.query(overlay, overlay.peer_ids[0], content, query_id=0)
        assert outcome.total_messages == outcome.query_messages + outcome.response_messages

    def test_larger_ttl_reaches_more(self, overlay, content):
        small = FloodingSearch(ttl=1).query(overlay, overlay.peer_ids[0], content, 0)
        large = FloodingSearch(ttl=3).query(overlay, overlay.peer_ids[0], content, 0)
        assert len(large.reached_peers) >= len(small.reached_peers)
        assert large.query_messages >= small.query_messages

    def test_stop_condition_expands_beyond_ttl(self, overlay, content):
        search = FloodingSearch(ttl=1)
        originator = overlay.peer_ids[0]
        # Results the flood can actually reach (the originator answers locally).
        required = len(content.plan_query(0) - {originator})
        outcome = search.query(
            overlay, originator, content, 0, required_results=required
        )
        assert len(outcome.responding_peers) >= required

    def test_stop_condition_exhausts_network_when_not_enough_results(self, overlay):
        empty_content = PlannedContentModel(overlay.peer_ids, matching_fraction=0.0)
        search = FloodingSearch(ttl=3)
        outcome = search.query(
            overlay, overlay.peer_ids[0], empty_content, 0, required_results=10
        )
        # The whole connected network gets covered without finding anything.
        assert len(outcome.reached_peers) == overlay.size - 1
        assert outcome.responding_peers == set()

    def test_counter_accumulates(self, overlay, content):
        search = FloodingSearch(ttl=2)
        search.query(overlay, overlay.peer_ids[0], content, 0)
        search.query(overlay, overlay.peer_ids[1], content, 1)
        assert search.counter.total > 0


class TestAnalyticalCost:
    def test_flooding_query_cost_formula(self):
        assert flooding_query_cost(3.5, 3) == pytest.approx(3.5 + 3.5**2 + 3.5**3)

    def test_flooding_query_cost_with_responders(self):
        assert flooding_query_cost(2.0, 2, responders=5) == pytest.approx(2 + 4 + 5)

    def test_flooding_query_cost_zero_ttl(self):
        assert flooding_query_cost(3.5, 0, responders=2) == 2.0
