"""Unit tests for approximate answering (Section 5.2.2)."""

import pytest

from repro.querying.aggregation import approximate_answer
from repro.querying.proposition import Clause, Proposition
from repro.querying.selection import select_summaries
from repro.saintetiq.hierarchy import SummaryHierarchy


@pytest.fixture
def paper_proposition():
    """(female is implicit — the numeric example only uses age/bmi clauses)."""
    return Proposition([Clause("bmi", ["underweight", "normal"])])


class TestApproximateAnswer:
    def test_paper_example_output_is_young(self, example_hierarchy, paper_proposition):
        """Patients with an underweight or normal BMI in Table 1 are young."""
        selection = select_summaries(example_hierarchy, paper_proposition)
        answer = approximate_answer(selection, paper_proposition, select=["age"])
        assert not answer.is_empty
        merged = answer.merged_output()
        assert "young" in merged["age"]

    def test_classes_grouped_by_interpretation(self, example_hierarchy, paper_proposition):
        selection = select_summaries(example_hierarchy, paper_proposition)
        answer = approximate_answer(selection, paper_proposition, select=["age"])
        interpretations = [cls.interpretation_dict()["bmi"] for cls in answer.classes]
        # Two interpretations: through "underweight" and through "normal".
        assert frozenset({"underweight"}) in interpretations
        assert frozenset({"normal"}) in interpretations

    def test_tuple_counts_per_class(self, example_hierarchy, paper_proposition):
        selection = select_summaries(example_hierarchy, paper_proposition)
        answer = approximate_answer(selection, paper_proposition, select=["age"])
        assert answer.total_tuple_count() == pytest.approx(3.0)

    def test_empty_selection_gives_empty_answer(self, example_hierarchy):
        proposition = Proposition([Clause("bmi", ["obese"])])
        selection = select_summaries(example_hierarchy, proposition)
        answer = approximate_answer(selection, proposition, select=["age"])
        assert answer.is_empty
        assert answer.merged_output() == {}
        assert answer.total_tuple_count() == 0.0

    def test_projection_attributes_recorded(self, example_hierarchy, paper_proposition):
        selection = select_summaries(example_hierarchy, paper_proposition)
        answer = approximate_answer(selection, paper_proposition, select=["age"])
        assert answer.select == ("age",)

    def test_output_labels_accessor(self, example_hierarchy, paper_proposition):
        selection = select_summaries(example_hierarchy, paper_proposition)
        answer = approximate_answer(selection, paper_proposition, select=["age"])
        first_class = answer.classes[0]
        assert first_class.output_labels("age")
        assert first_class.output_labels("unknown") == frozenset()
