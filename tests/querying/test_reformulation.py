"""Unit tests for query reformulation (Section 5.1)."""

import pytest

from repro.database.query import (
    AttributeIn,
    Comparison,
    DescriptorPredicate,
    SelectionQuery,
)
from repro.exceptions import QueryError
from repro.fuzzy.linguistic import Descriptor
from repro.querying.reformulation import reformulate, reformulation_widens_scope
from repro.workloads.queries import paper_example_query


class TestReformulate:
    def test_paper_example(self, background):
        """``bmi < 19`` becomes ``bmi in {underweight, normal}``."""
        flexible = reformulate(paper_example_query(), background)
        assert flexible.is_flexible()
        bmi_predicate = next(
            p for p in flexible.descriptor_predicates() if p.attribute == "bmi"
        )
        assert set(bmi_predicate.labels) == {"underweight", "normal"}

    def test_categorical_equality(self, background):
        query = SelectionQuery("patient", [Comparison("sex", "=", "female")])
        flexible = reformulate(query, background)
        predicate = flexible.descriptor_predicates()[0]
        assert predicate.labels == ["female"]

    def test_range_predicate_selects_overlapping_bands(self, background):
        query = SelectionQuery("patient", [Comparison("age", ">", 70)])
        flexible = reformulate(query, background)
        predicate = flexible.descriptor_predicates()[0]
        assert "old" in predicate.labels

    def test_in_predicate(self, background):
        query = SelectionQuery(
            "patient", [AttributeIn("disease", ["anorexia", "malaria"])]
        )
        flexible = reformulate(query, background)
        predicate = flexible.descriptor_predicates()[0]
        assert set(predicate.labels) == {"anorexia", "malaria"}

    def test_unknown_attribute_left_untouched(self, background):
        query = SelectionQuery("patient", [Comparison("height", ">", 150)])
        flexible = reformulate(query, background)
        assert isinstance(flexible.predicates[0], Comparison)

    def test_already_flexible_kept(self, background):
        query = SelectionQuery(
            "patient", [DescriptorPredicate("sex", [Descriptor("sex", "female")])]
        )
        flexible = reformulate(query, background)
        assert flexible.predicates == query.predicates

    def test_unknown_descriptor_raises(self, background):
        query = SelectionQuery(
            "patient", [DescriptorPredicate("sex", [Descriptor("sex", "unknown")])]
        )
        with pytest.raises(QueryError):
            reformulate(query, background)

    def test_unsatisfiable_predicate_raises(self, background):
        query = SelectionQuery("patient", [Comparison("age", ">", 500)])
        with pytest.raises(QueryError):
            reformulate(query, background)

    def test_projection_preserved(self, background):
        flexible = reformulate(paper_example_query(), background)
        assert flexible.select == ("age",)

    def test_no_false_negatives_on_raw_records(self, background):
        """QS ⊆ QS*: any record matching the crisp query matches the flexible one."""
        crisp = paper_example_query()
        flexible = reformulate(crisp, background)
        records = [
            {"age": 15, "sex": "female", "bmi": 17, "disease": "anorexia"},
            {"age": 18, "sex": "female", "bmi": 16.5, "disease": "anorexia"},
            {"age": 25, "sex": "female", "bmi": 18.9, "disease": "anorexia"},
        ]
        for record in records:
            assert crisp.matches(record)
            assert all(
                predicate.matches_with_background(record, background)
                for predicate in flexible.descriptor_predicates()
            )

    def test_false_positives_possible(self, background):
        """A BMI-20 patient satisfies the flexible query but not the crisp one."""
        crisp = paper_example_query()
        flexible = reformulate(crisp, background)
        record = {"age": 25, "sex": "female", "bmi": 20, "disease": "anorexia"}
        assert not crisp.matches(record)
        assert all(
            predicate.matches_with_background(record, background)
            for predicate in flexible.descriptor_predicates()
        )


class TestStructuralCheck:
    def test_widens_scope_structural_check(self, background):
        crisp = paper_example_query()
        flexible = reformulate(crisp, background)
        assert reformulation_widens_scope(crisp, flexible)

    def test_widens_scope_rejects_unrelated_queries(self, background):
        crisp = paper_example_query()
        other = SelectionQuery("other", [])
        assert not reformulation_widens_scope(crisp, other)
