"""Unit tests for the selection algorithm over hierarchies."""

import pytest

from repro.database.generator import PatientGenerator, PatientProfile
from repro.querying.proposition import Clause, Proposition
from repro.querying.selection import select_summaries
from repro.saintetiq.hierarchy import SummaryHierarchy


@pytest.fixture
def populated_hierarchy(numeric_background):
    """A hierarchy over two clearly separated patient populations."""
    hierarchy = SummaryHierarchy(
        numeric_background, attributes=["age", "bmi"], owner="peer-a"
    )
    generator = PatientGenerator(seed=1)
    young_thin = PatientProfile(age_range=(13, 17), bmi_range=(15, 17))
    old_heavy = PatientProfile(age_range=(70, 90), bmi_range=(33, 40))
    hierarchy.add_records(generator.records(15, profile=young_thin))
    hierarchy.add_records(generator.records(15, profile=old_heavy))
    return hierarchy


@pytest.fixture
def young_underweight():
    return Proposition([Clause("age", ["young"]), Clause("bmi", ["underweight"])])


class TestSelectSummaries:
    def test_empty_hierarchy_selects_nothing(self, numeric_background, young_underweight):
        selection = select_summaries(
            SummaryHierarchy(numeric_background), young_underweight
        )
        assert selection.is_empty
        assert selection.visited_nodes == 0

    def test_empty_proposition_selects_root(self, populated_hierarchy):
        selection = select_summaries(populated_hierarchy, Proposition([]))
        assert selection.summaries == [populated_hierarchy.root]

    def test_matching_population_found(self, populated_hierarchy, young_underweight):
        selection = select_summaries(populated_hierarchy, young_underweight)
        assert not selection.is_empty
        assert selection.matching_tuple_count() > 0

    def test_only_matching_cells_returned(self, populated_hierarchy, young_underweight):
        selection = select_summaries(populated_hierarchy, young_underweight)
        for cell in selection.matching_cells():
            assert cell.label_of("age") == "young"
            assert cell.label_of("bmi") == "underweight"

    def test_no_match_returns_empty(self, populated_hierarchy):
        proposition = Proposition([Clause("bmi", ["overweight"])])
        selection = select_summaries(populated_hierarchy, proposition)
        assert selection.is_empty

    def test_pruning_visits_fewer_nodes_than_tree(self, populated_hierarchy):
        proposition = Proposition([Clause("age", ["child"])])
        selection = select_summaries(populated_hierarchy, proposition)
        assert selection.visited_nodes <= populated_hierarchy.node_count()

    def test_peer_extent_propagated(self, populated_hierarchy, young_underweight):
        selection = select_summaries(populated_hierarchy, young_underweight)
        assert selection.peer_extent() == {"peer-a"}

    def test_most_abstract_summaries_are_full_matches(
        self, populated_hierarchy, young_underweight
    ):
        selection = select_summaries(populated_hierarchy, young_underweight)
        for summary in selection.summaries:
            for cell in summary.cells.values():
                assert cell.label_of("age") == "young"
                assert cell.label_of("bmi") == "underweight"

    def test_matching_count_bounded_by_total(self, populated_hierarchy, young_underweight):
        selection = select_summaries(populated_hierarchy, young_underweight)
        assert selection.matching_tuple_count() <= populated_hierarchy.root.tuple_count + 1e-9
