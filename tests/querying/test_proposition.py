"""Unit tests for clauses and propositions."""

import pytest

from repro.database.query import Comparison, DescriptorPredicate, SelectionQuery
from repro.exceptions import QueryError
from repro.fuzzy.linguistic import Descriptor
from repro.querying.proposition import Clause, Proposition


class TestClause:
    def test_admits(self):
        clause = Clause("bmi", ["underweight", "normal"])
        assert clause.admits("normal")
        assert not clause.admits("obese")

    def test_empty_clause_raises(self):
        with pytest.raises(QueryError):
            Clause("bmi", [])

    def test_descriptors(self):
        clause = Clause("bmi", ["normal"])
        assert clause.descriptors == frozenset({Descriptor("bmi", "normal")})

    def test_str_rendering(self):
        clause = Clause("bmi", ["underweight", "normal"])
        assert "OR" in str(clause)


class TestProposition:
    def test_attributes(self):
        proposition = Proposition(
            [Clause("sex", ["female"]), Clause("bmi", ["normal"])]
        )
        assert proposition.attributes == ["sex", "bmi"]

    def test_duplicate_attribute_raises(self):
        with pytest.raises(QueryError):
            Proposition([Clause("bmi", ["normal"]), Clause("bmi", ["obese"])])

    def test_clause_for(self):
        proposition = Proposition([Clause("sex", ["female"])])
        assert proposition.clause_for("sex").labels == frozenset({"female"})
        with pytest.raises(QueryError):
            proposition.clause_for("age")

    def test_empty_proposition(self):
        proposition = Proposition([])
        assert proposition.is_empty()
        assert str(proposition) == "TRUE"

    def test_admits_labels(self):
        proposition = Proposition(
            [Clause("sex", ["female"]), Clause("bmi", ["underweight", "normal"])]
        )
        assert proposition.admits_labels({"sex": ["female"], "bmi": ["normal"]})
        assert not proposition.admits_labels({"sex": ["male"], "bmi": ["normal"]})
        assert not proposition.admits_labels({"sex": ["female"]})

    def test_str_rendering_matches_paper_example(self):
        proposition = Proposition(
            [
                Clause("sex", ["female"]),
                Clause("bmi", ["underweight", "normal"]),
                Clause("disease", ["anorexia"]),
            ]
        )
        rendered = str(proposition)
        assert "AND" in rendered and "OR" in rendered

    def test_from_query(self):
        query = SelectionQuery(
            "patient",
            [
                DescriptorPredicate("sex", [Descriptor("sex", "female")]),
                DescriptorPredicate(
                    "bmi",
                    [Descriptor("bmi", "underweight"), Descriptor("bmi", "normal")],
                ),
            ],
            select=["age"],
        )
        proposition = Proposition.from_query(query)
        assert proposition.attributes == ["sex", "bmi"]
        assert proposition.clause_for("bmi").labels == frozenset(
            {"underweight", "normal"}
        )

    def test_from_query_rejects_crisp_predicates(self):
        query = SelectionQuery("patient", [Comparison("bmi", "<", 19)])
        with pytest.raises(QueryError):
            Proposition.from_query(query)
