"""The indexed query engine: equivalence with the pure tree walk.

The acceptance bar of the query-engine fast path: ``SummaryHierarchy.select``
(inverted index + per-proposition memo) must be **node-for-node identical**
to :func:`repro.querying.selection.select_summaries` — same ``Z_Q`` summaries
in the same order, same partial cells, same ``visited_nodes`` — on any
hierarchy at any version, including mid-build and after structural
merge/split operators ran.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzzy.vocabularies import medical_background_knowledge
from repro.querying.engine import HierarchyQueryIndex, proposition_key
from repro.querying.proposition import Clause, Proposition
from repro.querying.selection import QuerySelection, select_summaries
from repro.saintetiq.clustering import ClusteringParameters
from repro.saintetiq.hierarchy import SummaryHierarchy

AGE_LABELS = ["child", "young", "adult", "old"]
BMI_LABELS = ["underweight", "normal", "overweight", "obese"]


def _build_hierarchy(seed: int, record_count: int, max_children: int) -> SummaryHierarchy:
    """A randomized hierarchy over the age/bmi grid (merges/splits included)."""
    background = medical_background_knowledge(include_categorical=False)
    hierarchy = SummaryHierarchy(
        background,
        attributes=["age", "bmi"],
        parameters=ClusteringParameters(max_children=max_children),
        owner=f"peer-{seed}",
    )
    rng = random.Random(seed)
    hierarchy.add_records(
        {"age": rng.uniform(0, 100), "bmi": rng.uniform(10, 45)}
        for _ in range(record_count)
    )
    return hierarchy


def _random_proposition(rng: random.Random) -> Proposition:
    clauses = []
    if rng.random() < 0.85:
        clauses.append(
            Clause("age", rng.sample(AGE_LABELS, rng.randint(1, len(AGE_LABELS))))
        )
    if rng.random() < 0.85:
        clauses.append(
            Clause("bmi", rng.sample(BMI_LABELS, rng.randint(1, len(BMI_LABELS))))
        )
    return Proposition(clauses)


def assert_node_for_node_identical(
    pure: QuerySelection, fast: QuerySelection
) -> None:
    # Same Z_Q nodes, same order, same *instances* (not equal copies).
    assert [id(s) for s in pure.summaries] == [id(s) for s in fast.summaries]
    assert [id(c) for c in pure.partial_cells] == [id(c) for c in fast.partial_cells]
    assert pure.visited_nodes == fast.visited_nodes
    assert pure.peer_extent() == fast.peer_extent()
    assert pure.matching_tuple_count() == fast.matching_tuple_count()


class TestIndexedSelectionEquivalence:
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        record_count=st.integers(min_value=0, max_value=120),
        max_children=st.integers(min_value=2, max_value=6),
        proposition_seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_identical_on_randomized_hierarchies(
        self, seed, record_count, max_children, proposition_seed
    ):
        hierarchy = _build_hierarchy(seed, record_count, max_children)
        rng = random.Random(proposition_seed)
        for _ in range(5):
            proposition = _random_proposition(rng)
            pure = select_summaries(hierarchy, proposition)
            fast = hierarchy.select(proposition)
            if hierarchy.is_empty():
                assert fast.is_empty and pure.is_empty
                continue
            assert_node_for_node_identical(pure, fast)

    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        max_children=st.integers(min_value=2, max_value=5),
    )
    @settings(max_examples=20, deadline=None)
    def test_identical_mid_build_across_versions(self, seed, max_children):
        """The caches must refresh across mutations (mid-build, post-merge)."""
        background = medical_background_knowledge(include_categorical=False)
        hierarchy = SummaryHierarchy(
            background,
            attributes=["age", "bmi"],
            parameters=ClusteringParameters(max_children=max_children),
        )
        rng = random.Random(seed)
        proposition = _random_proposition(random.Random(seed + 1))
        for _round in range(4):
            hierarchy.add_records(
                {"age": rng.uniform(0, 100), "bmi": rng.uniform(10, 45)}
                for _ in range(rng.randint(1, 30))
            )
            pure = select_summaries(hierarchy, proposition)
            fast = hierarchy.select(proposition)
            assert_node_for_node_identical(pure, fast)
            # The cached selection must be served as long as nothing mutates.
            assert hierarchy.select(proposition) is fast

    def test_empty_proposition_matches_root(self):
        hierarchy = _build_hierarchy(seed=5, record_count=40, max_children=3)
        proposition = Proposition([])
        pure = select_summaries(hierarchy, proposition)
        fast = hierarchy.select(proposition)
        assert fast.summaries == [hierarchy.root]
        assert_node_for_node_identical(pure, fast)

    def test_empty_hierarchy_selects_nothing(self):
        background = medical_background_knowledge(include_categorical=False)
        hierarchy = SummaryHierarchy(background, attributes=["age", "bmi"])
        proposition = Proposition([Clause("age", ["young"])])
        assert hierarchy.select(proposition).is_empty
        assert select_summaries(hierarchy, proposition).is_empty


class TestIndexInternals:
    def test_index_memoized_on_version(self):
        hierarchy = _build_hierarchy(seed=2, record_count=30, max_children=4)
        index = hierarchy.query_index()
        assert hierarchy.query_index() is index  # same version, same index
        hierarchy.add_records([{"age": 33.0, "bmi": 22.0}])
        rebuilt = hierarchy.query_index()
        assert rebuilt is not index  # mutation invalidated it

    def test_selection_cache_dropped_on_mutation(self):
        hierarchy = _build_hierarchy(seed=2, record_count=30, max_children=4)
        proposition = Proposition([Clause("age", ["young", "adult"])])
        first = hierarchy.select(proposition)
        hierarchy.add_records([{"age": 70.0, "bmi": 31.0}])
        second = hierarchy.select(proposition)
        assert second is not first
        assert_node_for_node_identical(select_summaries(hierarchy, proposition), second)

    def test_clause_candidates_match_valuation_semantics(self):
        from repro.querying.valuation import Valuation, valuate

        hierarchy = _build_hierarchy(seed=9, record_count=60, max_children=3)
        index = hierarchy.query_index()
        clause = Clause("bmi", ["normal", "obese"])
        satisfying, fully = index.clause_candidates(clause)
        assert fully <= satisfying
        proposition = Proposition([clause])
        for node in hierarchy.root.iter_subtree():
            valuation = valuate(node, proposition)
            assert (node.node_id in satisfying) == (
                valuation.overall is not Valuation.NONE
            )
            assert (node.node_id in fully) == (valuation.overall is Valuation.FULL)

    def test_proposition_key_is_clause_order_independent(self):
        a = Proposition([Clause("age", ["young"]), Clause("bmi", ["obese", "normal"])])
        b = Proposition([Clause("bmi", ["normal", "obese"]), Clause("age", ["young"])])
        assert proposition_key(a) == proposition_key(b)
        hierarchy = _build_hierarchy(seed=4, record_count=50, max_children=4)
        assert hierarchy.select(a) is hierarchy.select(b)

    def test_standalone_index_select(self):
        hierarchy = _build_hierarchy(seed=11, record_count=45, max_children=3)
        index = HierarchyQueryIndex(hierarchy.root)
        assert index.node_count() == hierarchy.node_count()
        proposition = Proposition([Clause("age", ["old"])])
        assert_node_for_node_identical(
            select_summaries(hierarchy, proposition), index.select(proposition)
        )


class TestValuationFastPaths:
    @pytest.mark.parametrize(
        "labels, expected",
        [
            (["adult", "old"], "full"),
            (["adult"], "partial"),
            (["child"], "none"),
        ],
    )
    def test_early_exit_preserves_outcomes(self, labels, expected):
        from repro.querying.valuation import valuate

        hierarchy = SummaryHierarchy(
            medical_background_knowledge(include_categorical=False),
            attributes=["age", "bmi"],
        )
        hierarchy.add_records(
            [{"age": 25.0, "bmi": 22.0}, {"age": 80.0, "bmi": 22.0}]
        )
        root = hierarchy.root
        assert root.labels_of("age") == frozenset({"adult", "old"})
        valuation = valuate(root, Proposition([Clause("age", labels)]))
        assert valuation.overall.name.lower() == expected
