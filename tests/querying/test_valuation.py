"""Unit tests for the valuation function."""

import pytest

from repro.fuzzy.linguistic import Descriptor
from repro.querying.proposition import Clause, Proposition
from repro.querying.valuation import Valuation, cell_satisfies, valuate
from repro.saintetiq.cell import Cell, make_cell_key
from repro.saintetiq.summary import Summary, summary_from_cells


def _cell(labels, count=1.0):
    key = make_cell_key(Descriptor(a, l) for a, l in labels.items())
    cell = Cell(key=key)
    grades = {Descriptor(a, l): 1.0 for a, l in labels.items()}
    cell.absorb_record({a: 0.0 for a in labels}, count, grades)
    return cell


@pytest.fixture
def proposition():
    return Proposition(
        [Clause("age", ["young"]), Clause("bmi", ["underweight", "normal"])]
    )


class TestValuate:
    def test_full_when_every_label_admitted(self, proposition):
        summary = summary_from_cells(
            [_cell({"age": "young", "bmi": "underweight"}),
             _cell({"age": "young", "bmi": "normal"})]
        )
        valuation = valuate(summary, proposition)
        assert valuation.overall is Valuation.FULL
        assert valuation.certainly_satisfies
        assert valuation.satisfies

    def test_partial_when_some_labels_admitted(self, proposition):
        summary = summary_from_cells(
            [_cell({"age": "young", "bmi": "underweight"}),
             _cell({"age": "adult", "bmi": "obese"})]
        )
        valuation = valuate(summary, proposition)
        assert valuation.overall is Valuation.PARTIAL
        assert valuation.satisfies
        assert not valuation.certainly_satisfies

    def test_none_when_no_label_admitted(self, proposition):
        summary = summary_from_cells([_cell({"age": "old", "bmi": "obese"})])
        valuation = valuate(summary, proposition)
        assert valuation.overall is Valuation.NONE
        assert not valuation.satisfies

    def test_missing_attribute_gives_none(self, proposition):
        summary = summary_from_cells([_cell({"age": "young"})])
        valuation = valuate(summary, proposition)
        assert valuation.overall is Valuation.NONE
        assert valuation.per_attribute["bmi"] is Valuation.NONE

    def test_per_attribute_details(self, proposition):
        summary = summary_from_cells(
            [_cell({"age": "young", "bmi": "underweight"}),
             _cell({"age": "young", "bmi": "obese"})]
        )
        valuation = valuate(summary, proposition)
        assert valuation.per_attribute["age"] is Valuation.FULL
        assert valuation.per_attribute["bmi"] is Valuation.PARTIAL

    def test_empty_proposition_is_full(self):
        summary = summary_from_cells([_cell({"age": "old"})])
        valuation = valuate(summary, Proposition([]))
        assert valuation.overall is Valuation.FULL

    def test_empty_summary_is_none(self, proposition):
        valuation = valuate(Summary(), proposition)
        assert valuation.overall is Valuation.NONE


class TestCellSatisfies:
    def test_matching_cell(self, proposition):
        assert cell_satisfies(_cell({"age": "young", "bmi": "normal"}), proposition)

    def test_non_matching_cell(self, proposition):
        assert not cell_satisfies(_cell({"age": "old", "bmi": "normal"}), proposition)

    def test_cell_missing_attribute(self, proposition):
        assert not cell_satisfies(_cell({"age": "young"}), proposition)

    def test_empty_proposition_always_satisfied(self):
        assert cell_satisfies(_cell({"age": "old"}), Proposition([]))
