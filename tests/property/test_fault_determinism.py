"""Determinism properties of fault injection.

Two properties gate the whole fault subsystem:

1. *Reproducibility* — the same builder seed plus the same
   :class:`~repro.network.faults.FaultPlan` produce byte-identical runs:
   identical counters, identical fault statistics, identical answers.
2. *Resumability* — a checkpoint taken mid-partition restores into a session
   that continues exactly like the uninterrupted one, on every store backend
   (in-memory, JSON directory, sqlite).
"""

import pytest

from repro.core.session import SystemBuilder
from repro.network.faults import FaultPlan, LinkFaults, PartitionEvent
from repro.store import open_store

PLAN = FaultPlan(
    seed=21,
    link=LinkFaults(drop_probability=0.3, duplicate_probability=0.05),
    partitions=[PartitionEvent(at=300.0, fraction=0.5, heal_at=1800.0)],
)


def _build(seed=17, plan=PLAN):
    builder = (
        SystemBuilder()
        .topology(peer_count=48, seed=seed)
        .planned_content(hit_rate=0.2)
        .seed(seed)
    )
    if plan is not None:
        builder.faults(plan)
    return builder.build()


def _fingerprint(session, answers):
    """Everything observable about a run, comparably serialized."""
    system = session.system
    return {
        "counter": system.counter.state_payload(),
        "faults": system.faults.state_payload() if system.faults else None,
        "rng": system.rng.getstate(),
        "clock": session.simulator.now,
        "answers": [
            (
                a.routing.total_messages,
                sorted(a.routing.responding_peers),
                sorted(a.degradation.unreachable_domains),
                a.degradation.probe_messages,
                a.results,
            )
            for a in answers
        ],
    }


def _drive(session, until=600.0, queries=8):
    session.run_until(until)
    return session.query_batch(count=queries)


class TestReproducibility:
    def test_same_seed_same_plan_is_byte_identical(self):
        runs = []
        for _ in range(2):
            session = _build()
            answers = _drive(session)
            runs.append(_fingerprint(session, answers))
        assert runs[0] == runs[1]

    def test_different_fault_seed_diverges(self):
        # Sanity check that the fingerprint is sensitive at all: a different
        # fault seed draws different losses.
        other = FaultPlan(seed=22, link=PLAN.link, partitions=PLAN.partitions)
        a = _fingerprint(*(lambda s: (s, _drive(s)))(_build()))
        b = _fingerprint(*(lambda s: (s, _drive(s)))(_build(plan=other)))
        assert a["faults"] != b["faults"]


class TestCheckpointMidPartition:
    @pytest.fixture(params=["memory", "json", "sqlite"])
    def target(self, request, tmp_path):
        if request.param == "memory":
            backend = open_store(None)
            yield backend
            backend.close()
        elif request.param == "json":
            yield str(tmp_path / "ckpt")
        else:
            yield str(tmp_path / "ckpt.sqlite")

    def test_restore_continues_identically(self, target):
        # The uninterrupted reference run.
        reference = _build()
        reference.run_until(600.0)
        assert reference.system.faults.partitioned
        ref_answers = _drive(reference, until=2400.0)

        # The checkpointed run: stop mid-partition, persist, restore, continue.
        session = _build()
        session.run_until(600.0)
        assert session.system.faults.partitioned
        session.checkpoint(target, name="mid-partition")

        restored = SystemBuilder.from_checkpoint(target, name="mid-partition")
        assert restored.system.faults is not None
        assert restored.system.faults.partitioned
        res_answers = _drive(restored, until=2400.0)

        assert _fingerprint(restored, res_answers) == _fingerprint(
            reference, ref_answers
        )
        # The partition healed in both continuations (heal_at=1800 < 2400).
        assert not restored.system.faults.partitioned
