"""Property-based tests for protocol-level invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ProtocolConfig
from repro.core.cooperation import CooperationList
from repro.core.domain import Domain
from repro.core.maintenance import MaintenanceEngine
from repro.core.content import PlannedContentModel
from repro.core.routing import QueryRouter, RoutingPolicy
from repro.costmodel.query_cost import domain_query_cost
from repro.network.simulator import Simulator


class TestCooperationListProperties:
    @given(
        st.integers(min_value=1, max_value=60),
        st.sets(st.integers(min_value=0, max_value=59)),
    )
    @settings(max_examples=100)
    def test_old_fraction_matches_marked_subset(self, partner_count, stale_indices):
        cooperation = CooperationList()
        for index in range(partner_count):
            cooperation.add_partner(f"p{index}")
        stale = {i for i in stale_indices if i < partner_count}
        for index in stale:
            cooperation.mark_stale(f"p{index}")
        assert cooperation.old_fraction() == len(stale) / partner_count
        assert set(cooperation.old_partners()) == {f"p{i}" for i in stale}

    @given(
        st.integers(min_value=1, max_value=40),
        st.floats(min_value=0.05, max_value=1.0),
    )
    @settings(max_examples=100)
    def test_reset_clears_reconciliation_condition(self, partner_count, alpha):
        cooperation = CooperationList()
        for index in range(partner_count):
            cooperation.add_partner(f"p{index}")
            cooperation.mark_stale(f"p{index}")
        assert cooperation.needs_reconciliation(alpha)
        cooperation.reset_all()
        assert not cooperation.needs_reconciliation(alpha)


class TestRoutingProperties:
    @given(
        st.integers(min_value=2, max_value=50),
        st.floats(min_value=0.0, max_value=1.0),
        st.sampled_from(list(RoutingPolicy)),
        st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_routing_set_and_accounting_invariants(
        self, partner_count, matching_fraction, policy, seed
    ):
        domain = Domain.create("sp")
        peer_ids = [f"p{i}" for i in range(partner_count)]
        for index, peer_id in enumerate(peer_ids):
            domain.add_partner(peer_id, distance=float(index))
            if index % 3 == 0:
                domain.cooperation.mark_stale(peer_id)
        content = PlannedContentModel(
            peer_ids, matching_fraction=matching_fraction, seed=seed
        )
        router = QueryRouter()
        outcome = router.route_in_domain(0, domain, content, policy=policy)

        partners = set(domain.partner_ids)
        assert outcome.contacted_peers <= partners
        assert outcome.responding_peers <= outcome.contacted_peers
        assert outcome.false_positives == outcome.contacted_peers - outcome.responding_peers
        assert outcome.false_negatives.isdisjoint(outcome.contacted_peers)
        # Message count identity: 1 hop to the SP + queries + responses.
        assert outcome.messages == 1 + len(outcome.contacted_peers) + len(
            outcome.responding_peers
        )
        # The simulated per-domain cost never exceeds the analytical C_d with FP=0.
        assert outcome.messages <= domain_query_cost(len(outcome.contacted_peers)) + 1e-9

    @given(
        st.integers(min_value=2, max_value=50),
        st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_precision_policy_never_contacts_stale_partners(self, partner_count, seed):
        domain = Domain.create("sp")
        peer_ids = [f"p{i}" for i in range(partner_count)]
        for index, peer_id in enumerate(peer_ids):
            domain.add_partner(peer_id, distance=1.0)
            if index % 2 == 0:
                domain.cooperation.mark_stale(peer_id)
        content = PlannedContentModel(peer_ids, matching_fraction=0.5, seed=seed)
        outcome = QueryRouter().route_in_domain(
            0, domain, content, policy=RoutingPolicy.PRECISION
        )
        assert outcome.contacted_peers.isdisjoint(set(domain.old_partners()))
        assert outcome.false_positives == set()


class TestMaintenanceProperties:
    @given(
        st.integers(min_value=2, max_value=60),
        st.floats(min_value=0.05, max_value=1.0),
        st.lists(st.integers(min_value=0, max_value=59), min_size=0, max_size=120),
    )
    @settings(max_examples=60, deadline=None)
    def test_old_fraction_never_exceeds_alpha_after_prompt_reconciliation(
        self, partner_count, alpha, push_sequence
    ):
        """If the SP reconciles as soon as the threshold is hit, the fraction of
        old descriptions observed right after any push never exceeds alpha (plus
        the one push that crossed it)."""
        config = ProtocolConfig(freshness_threshold=alpha)
        engine = MaintenanceEngine(config)
        domain = Domain.create("sp")
        for index in range(partner_count):
            domain.add_partner(f"p{index}", distance=1.0)
        for raw_index in push_sequence:
            peer_id = f"p{raw_index % partner_count}"
            due = engine.push_stale(domain, peer_id)
            if due:
                engine.reconcile(domain)
            assert domain.old_fraction() <= alpha + 1.0 / partner_count


class TestSimulatorProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=50))
    @settings(max_examples=60)
    def test_events_always_fire_in_non_decreasing_time_order(self, delays):
        simulator = Simulator()
        fired = []
        for delay in delays:
            simulator.schedule(delay, lambda d=delay: fired.append(simulator.now))
        simulator.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)
