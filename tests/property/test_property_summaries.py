"""Property-based tests for the summarization engine invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzzy.vocabularies import medical_background_knowledge
from repro.saintetiq.hierarchy import SummaryHierarchy
from repro.saintetiq.merging import merge_hierarchies

BACKGROUND = medical_background_knowledge(include_categorical=False)


def patient_records():
    return st.lists(
        st.fixed_dictionaries(
            {
                "age": st.floats(min_value=0, max_value=119, allow_nan=False),
                "bmi": st.floats(min_value=11, max_value=59, allow_nan=False),
            }
        ),
        min_size=1,
        max_size=40,
    )


def _build(records, owner="peer"):
    hierarchy = SummaryHierarchy(BACKGROUND, attributes=["age", "bmi"], owner=owner)
    hierarchy.add_records(records)
    return hierarchy


class TestHierarchyInvariants:
    @given(patient_records())
    @settings(max_examples=40, deadline=None)
    def test_mass_conservation(self, records):
        """The root's tuple count equals the number of summarized records."""
        hierarchy = _build(records)
        assert abs(hierarchy.root.tuple_count - len(records)) < 1e-6

    @given(patient_records())
    @settings(max_examples=40, deadline=None)
    def test_structural_invariants_always_hold(self, records):
        hierarchy = _build(records)
        hierarchy.validate()

    @given(patient_records())
    @settings(max_examples=40, deadline=None)
    def test_leaf_count_bounded_by_grid_size(self, records):
        hierarchy = _build(records)
        assert hierarchy.leaf_count() <= hierarchy.mapping.grid_size()

    @given(patient_records())
    @settings(max_examples=40, deadline=None)
    def test_generalization_partial_order_along_edges(self, records):
        hierarchy = _build(records)
        for node in hierarchy.root.iter_subtree():
            for child in node.children:
                assert node.covers(child)

    @given(patient_records())
    @settings(max_examples=30, deadline=None)
    def test_snapshot_preserves_mass(self, records):
        hierarchy = _build(records)
        snapshot = hierarchy.snapshot()
        assert abs(snapshot.root.tuple_count - hierarchy.root.tuple_count) < 1e-6


class TestMergeInvariants:
    @given(patient_records(), patient_records())
    @settings(max_examples=25, deadline=None)
    def test_merge_conserves_mass_and_peers(self, first_records, second_records):
        first = _build(first_records, owner="p1")
        second = _build(second_records, owner="p2")
        merged = merge_hierarchies([first, second], owner="sp")
        expected = first.root.tuple_count + second.root.tuple_count
        assert abs(merged.root.tuple_count - expected) < 1e-6
        assert merged.peer_extent() == {"p1", "p2"}

    @given(patient_records(), patient_records())
    @settings(max_examples=25, deadline=None)
    def test_merge_is_mass_commutative(self, first_records, second_records):
        first = _build(first_records, owner="p1")
        second = _build(second_records, owner="p2")
        ab = merge_hierarchies([first, second])
        ba = merge_hierarchies([second, first])
        assert abs(ab.root.tuple_count - ba.root.tuple_count) < 1e-6
        assert ab.signature() == ba.signature()

    @given(patient_records())
    @settings(max_examples=25, deadline=None)
    def test_merged_leaves_bounded_by_grid(self, records):
        halves = [records[::2], records[1::2]]
        hierarchies = [
            _build(half, owner=f"p{i}") for i, half in enumerate(halves) if half
        ]
        if not hierarchies:
            return
        merged = merge_hierarchies(hierarchies)
        assert merged.leaf_count() <= merged.mapping.grid_size()


class TestAggregateCacheInvariants:
    @given(patient_records())
    @settings(max_examples=30, deadline=None)
    def test_cached_aggregates_match_fresh_recompute(self, records):
        """Every node's materialized aggregates survive a from-scratch check."""
        hierarchy = _build(records)
        for node in hierarchy.root.iter_subtree():
            node.check_cache()

    @given(patient_records())
    @settings(max_examples=30, deadline=None)
    def test_intent_equals_rederived_label_sets(self, records):
        hierarchy = _build(records)
        for node in hierarchy.root.iter_subtree():
            rederived = {}
            for key in node.cells:
                for descriptor in key:
                    rederived.setdefault(descriptor.attribute, set()).add(
                        descriptor.label
                    )
            assert node.intent == {
                attribute: frozenset(labels)
                for attribute, labels in rederived.items()
            }

    @given(patient_records())
    @settings(max_examples=20, deadline=None)
    def test_hierarchy_depth_cache_tracks_mutations(self, records):
        hierarchy = SummaryHierarchy(
            BACKGROUND, attributes=["age", "bmi"], owner="peer"
        )
        for record in records:
            hierarchy.add_record(record)
            assert hierarchy.depth() == hierarchy.root.depth()
