"""Property-based tests for the fuzzy substrate (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzzy.membership import TrapezoidalMembership
from repro.fuzzy.partition import FuzzyPartition
from repro.fuzzy.vocabularies import medical_background_knowledge

BACKGROUND = medical_background_knowledge()


@st.composite
def trapezoids(draw):
    points = sorted(
        draw(
            st.lists(
                st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                min_size=4,
                max_size=4,
            )
        )
    )
    return TrapezoidalMembership(*points)


class TestTrapezoidProperties:
    @given(trapezoids(), st.floats(min_value=-2e6, max_value=2e6, allow_nan=False))
    @settings(max_examples=200)
    def test_grades_are_bounded(self, trapezoid, value):
        assert 0.0 <= trapezoid.grade(value) <= 1.0

    @given(trapezoids())
    @settings(max_examples=100)
    def test_core_values_have_grade_one(self, trapezoid):
        low, high = trapezoid.core
        midpoint = (low + high) / 2.0
        assert trapezoid.grade(midpoint) == 1.0

    @given(trapezoids(), st.floats(min_value=-2e6, max_value=2e6, allow_nan=False))
    @settings(max_examples=200)
    def test_support_contains_positive_grades(self, trapezoid, value):
        if trapezoid.grade(value) > 0.0:
            low, high = trapezoid.support
            assert low <= value <= high


class TestBackgroundProperties:
    @given(
        st.floats(min_value=0, max_value=120, allow_nan=False),
        st.floats(min_value=10, max_value=60, allow_nan=False),
    )
    @settings(max_examples=200)
    def test_fuzzification_grades_bounded_and_positive(self, age, bmi):
        for attribute, value in (("age", age), ("bmi", bmi)):
            graded = BACKGROUND.fuzzify_value(attribute, value)
            for descriptor, grade in graded.items():
                assert 0.0 < grade <= 1.0
                assert descriptor.attribute == attribute

    @given(st.floats(min_value=0, max_value=120, allow_nan=False))
    @settings(max_examples=200)
    def test_age_partition_is_ruspini_like(self, age):
        graded = BACKGROUND.fuzzify_value("age", age)
        assert abs(sum(graded.values()) - 1.0) < 1e-6

    @given(st.floats(min_value=10, max_value=60, allow_nan=False))
    @settings(max_examples=200)
    def test_bmi_partition_is_ruspini_like(self, bmi):
        graded = BACKGROUND.fuzzify_value("bmi", bmi)
        assert abs(sum(graded.values()) - 1.0) < 1e-6


class TestPartitionBuilderProperties:
    @given(
        st.integers(min_value=1, max_value=6),
        st.floats(min_value=0.0, max_value=0.4),
        st.floats(min_value=1.0, max_value=1e4),
    )
    @settings(max_examples=100)
    def test_from_breakpoints_always_covers_domain(self, bands, overlap_fraction, width):
        labels = [f"band{i}" for i in range(bands)]
        breakpoints = [i * width for i in range(bands + 1)]
        partition = FuzzyPartition.from_breakpoints(
            "x", labels, breakpoints, overlap=overlap_fraction * width
        )
        low, high = partition.domain
        for fraction in (0.0, 0.25, 0.5, 0.75, 1.0):
            value = low + fraction * (high - low)
            assert partition.covers(value)
