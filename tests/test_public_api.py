"""Tests of the top-level public API surface."""

import importlib

import pytest

import repro


class TestPublicSurface:
    def test_version_is_exposed(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_every_name_in_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_subpackage_all_exports_resolve(self):
        for module_name in (
            "repro.fuzzy",
            "repro.database",
            "repro.saintetiq",
            "repro.querying",
            "repro.network",
            "repro.core",
            "repro.baselines",
            "repro.costmodel",
            "repro.workloads",
            "repro.experiments",
        ):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"{module_name}.{name} missing"

    def test_module_docstring_example_runs(self):
        """The usage sketched in the package docstring actually works."""
        background = repro.medical_background_knowledge()
        hierarchy = repro.SummaryHierarchy(background, attributes=["age", "bmi"])
        generator = repro.PatientGenerator(seed=1)
        added = hierarchy.add_records(
            record.as_dict() for record in generator.paper_example_relation()
        )
        assert added == 3
        assert hierarchy.leaf_count() >= 1

    def test_exceptions_form_a_single_family(self):
        for name in (
            "SchemaError",
            "QueryError",
            "BackgroundKnowledgeError",
            "SummaryError",
            "NetworkError",
            "ProtocolError",
            "ConfigurationError",
        ):
            exception_type = getattr(repro, name)
            assert issubclass(exception_type, repro.ReproError)

    def test_routing_policy_values(self):
        assert {policy.value for policy in repro.RoutingPolicy} == {
            "all",
            "precision",
            "recall",
        }

    def test_freshness_values_match_paper(self):
        assert repro.Freshness.FRESH == 0
        assert repro.Freshness.STALE == 1
        assert repro.Freshness.UNAVAILABLE == 2
