"""Tests of the top-level public API surface."""

import importlib

import pytest

import repro


class TestPublicSurface:
    def test_version_is_exposed(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_every_name_in_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_subpackage_all_exports_resolve(self):
        for module_name in (
            "repro.fuzzy",
            "repro.database",
            "repro.saintetiq",
            "repro.querying",
            "repro.network",
            "repro.core",
            "repro.baselines",
            "repro.costmodel",
            "repro.workloads",
            "repro.experiments",
        ):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"{module_name}.{name} missing"

    def test_module_docstring_example_runs(self):
        """The quick tour sketched in the package docstring actually works."""
        session = (
            repro.SystemBuilder()
            .topology(peer_count=32, average_degree=4)
            .planned_content(hit_rate=0.25)
            .seed(7)
            .build()
        )
        answer = session.query()
        assert answer.results >= 1
        assert answer.total_messages >= answer.results
        assert answer.staleness is not None
        # ... and so does its persistence section.
        store = repro.InMemoryBackend()
        assert session.checkpoint(store) == "session"
        resumed = repro.SystemBuilder.from_checkpoint(store)
        assert resumed.query().routing == session.query().routing

    def test_module_docstring_doctests_pass(self):
        """The quick tour is a real doctest, executed verbatim."""
        import doctest

        results = doctest.testmod(repro, verbose=False)
        assert results.attempted >= 8
        assert results.failed == 0

    def test_summarization_substrate_still_direct(self):
        """The low-level summarization engine remains usable on its own."""
        background = repro.medical_background_knowledge()
        hierarchy = repro.SummaryHierarchy(background, attributes=["age", "bmi"])
        generator = repro.PatientGenerator(seed=1)
        added = hierarchy.add_records(
            record.as_dict() for record in generator.paper_example_relation()
        )
        assert added == 3
        assert hierarchy.leaf_count() >= 1

    def test_exceptions_form_a_single_family(self):
        for name in (
            "SchemaError",
            "QueryError",
            "BackgroundKnowledgeError",
            "SummaryError",
            "NetworkError",
            "ProtocolError",
            "ConfigurationError",
        ):
            exception_type = getattr(repro, name)
            assert issubclass(exception_type, repro.ReproError)

    def test_routing_policy_values(self):
        assert {policy.value for policy in repro.RoutingPolicy} == {
            "all",
            "precision",
            "recall",
        }

    def test_freshness_values_match_paper(self):
        assert repro.Freshness.FRESH == 0
        assert repro.Freshness.STALE == 1
        assert repro.Freshness.UNAVAILABLE == 2


class TestSessionSurface:
    """The declarative façade is part of the supported public API."""

    def test_session_facade_exported(self):
        for name in (
            "SystemBuilder",
            "NetworkSession",
            "QueryAnswer",
            "MaintenanceReport",
            "SessionTraffic",
            "ScenarioRegistry",
            "default_registry",
            "SimulationScenario",
        ):
            assert name in repro.__all__, f"repro.{name} not in __all__"
            assert hasattr(repro, name)

    def test_query_answer_wraps_a_routing_result(self):
        session = (
            repro.SystemBuilder()
            .topology(peer_count=16)
            .planned_content(hit_rate=0.2)
            .seed(1)
            .build()
        )
        answer = session.query(required_results=1)
        assert isinstance(answer, repro.QueryAnswer)
        assert isinstance(answer.routing, repro.QueryRoutingResult)
        assert answer.query_id == answer.routing.query_id
        assert answer.satisfied() == answer.routing.satisfied()

    def test_builder_errors_are_configuration_errors(self):
        with pytest.raises(repro.ConfigurationError):
            repro.SystemBuilder().build()

    def test_default_registry_builds_sessions(self):
        registry = repro.default_registry()
        assert isinstance(registry, repro.ScenarioRegistry)
        session = registry.session("smoke", seed=3)
        assert isinstance(session, repro.NetworkSession)
