"""Supervised multi-process serving: health, dispatch, cache, drain.

A module-scoped supervisor forks real worker processes over the planned
checkpoint; the tests assert the crash-safe serving contract *without*
faults (the chaos tests inject them): fleet answers equal a fresh local
restore, the response cache is invisible except in the counters, deadlines
and admission control fail typed, and shutdown drains gracefully.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.exceptions import ServeError
from repro.serve.client import ServeClient
from repro.serve.supervisor import LIVE, STOPPED, Supervisor
from repro.store.checkpoint import open_readonly_session


@pytest.fixture(scope="module")
def supervisor(planned_store):
    sup = Supervisor(
        planned_store,
        workers=2,
        max_inflight=16,
        deadline_ms=30_000,
        cache_size=64,
        heartbeat_interval=0.15,
        restart_backoff_base=0.05,
        restart_backoff_cap=0.5,
    ).start()
    yield sup
    sup.stop()


@pytest.fixture(scope="module")
def client(supervisor):
    return ServeClient(supervisor.url, timeout=60.0, retry_seed=0)


@pytest.fixture(scope="module")
def local_session(planned_store):
    session = open_readonly_session(planned_store)
    yield session
    session.close()


class TestFleetServing:
    def test_health_reports_live_fleet(self, client, supervisor):
        payload = client.health()
        assert payload["status"] == "ok"
        assert payload["role"] == "supervisor"
        assert payload["workers_live"] == 2
        assert payload["checkpoint_digest"] == supervisor.checkpoint_digest
        assert len(payload["checkpoint_digest"]) == 64
        states = [worker["state"] for worker in payload["workers"]]
        assert states == [LIVE, LIVE]
        pids = [worker["pid"] for worker in payload["workers"]]
        assert len(set(pids)) == 2  # genuinely separate processes

    def test_fleet_answers_equal_fresh_local_restore(self, client, local_session):
        served = client.query_batch(count=5)
        local = local_session.query_batch(count=5)
        assert served == local

    def test_staleness_across_the_fleet_equals_local(self, client, local_session):
        assert client.staleness(query_id=1) == local_session.staleness(query_id=1)

    def test_single_query_roundtrip(self, client, local_session):
        assert client.query(query_id=2) == local_session.query(query_id=2)

    def test_worker_errors_relay_typed(self, client):
        # A malformed query document 400s on the worker; the supervisor must
        # relay the typed error body, not swallow or retry it.
        with pytest.raises(ServeError, match="HTTP 400"):
            client._request("POST", "/query", {"query": {"bogus": 1}})


class TestResponseCacheIntegration:
    def test_repeat_request_hits_cache_with_equal_answer(
        self, client, supervisor, local_session
    ):
        before = client.health()["cache"]
        first = client.query_batch(count=7)
        again = client.query_batch(count=7)
        after = client.health()["cache"]
        assert first == again == local_session.query_batch(count=7)
        assert after["hits"] >= before["hits"] + 1
        assert after["size"] >= 1

    def test_json_spelling_shares_one_entry(self, client, supervisor):
        url = supervisor.url + "/query_batch"

        def post(raw):
            request = urllib.request.Request(
                url, data=raw, headers={"Content-Type": "application/json"}
            )
            with urllib.request.urlopen(request, timeout=60.0) as response:
                return response.read(), response.headers.get("X-Repro-Cache")

        body_a, _ = post(b'{"count": 6, "include_staleness": true}')
        body_b, cache_flag = post(b'{ "include_staleness":true ,"count":6}')
        assert body_a == body_b  # byte-identical across spellings
        assert cache_flag == "hit"


class TestDeadlinesAndShedding:
    def test_impossible_deadline_fails_typed_504(self, supervisor):
        request = urllib.request.Request(
            supervisor.url + "/query",
            data=b"{}",
            headers={
                "Content-Type": "application/json",
                "X-Repro-Deadline-Ms": "0.000001",
            },
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=60.0)
        assert excinfo.value.code == 504
        detail = json.loads(excinfo.value.read())
        assert detail["type"] == "ServeDeadlineError"

    def test_admission_control_sheds_beyond_max_inflight(self, planned_store):
        sup = Supervisor(planned_store, workers=1, max_inflight=2)
        sup._inflight = 2  # saturate without racing real slow requests
        status, _, body, headers = sup.dispatch("POST", "/query", b"{}", {})
        assert status == 503
        assert json.loads(body)["type"] == "ServeOverloadError"
        assert float(headers["Retry-After"]) > 0
        assert sup._shed_total == 1

    def test_no_live_worker_sheds_typed(self, planned_store):
        sup = Supervisor(planned_store, workers=1)  # never started: no fleet
        status, _, body, headers = sup.dispatch("POST", "/query", b"{}", {})
        assert status == 503
        assert json.loads(body)["type"] == "ServeOverloadError"
        assert "Retry-After" in headers


class TestRestartBackoff:
    def test_backoff_is_exponential_and_capped(self, planned_store):
        sup = Supervisor(
            planned_store,
            workers=1,
            restart_backoff_base=0.1,
            restart_backoff_cap=5.0,
        )
        delays = [sup.backoff_delay(n) for n in range(10)]
        assert delays[:4] == [0.1, 0.2, 0.4, 0.8]
        assert delays[-1] == 5.0  # capped, not 51.2
        assert all(a <= b for a, b in zip(delays, delays[1:]))


class TestConfigValidation:
    def test_zero_workers_is_typed(self, planned_store):
        with pytest.raises(ServeError, match="at least 1 worker"):
            Supervisor(planned_store, workers=0)

    def test_bad_inflight_and_deadline_are_typed(self, planned_store):
        with pytest.raises(ServeError, match="max_inflight"):
            Supervisor(planned_store, max_inflight=0)
        with pytest.raises(ServeError, match="deadline_ms"):
            Supervisor(planned_store, deadline_ms=0)


class TestMergedMetrics:
    def test_metrics_aggregate_supervisor_and_workers(self, client):
        client.query_batch(count=2)  # ensure at least one worker served
        text = client.metrics()
        assert "repro_supervisor_requests_total" in text
        assert "repro_supervisor_workers_live" in text
        assert "repro_serve_cache_hits_total" in text
        # Worker-side serve counters surface through the merge.
        assert "repro_serve_requests_total" in text

    def test_worker_snapshot_endpoint_feeds_the_merge(self, supervisor):
        worker = supervisor.workers[0]
        with urllib.request.urlopen(
            worker.url + "/metrics_snapshot", timeout=10.0
        ) as response:
            payload = json.loads(response.read())
        assert payload["pid"] == worker.pid
        assert "counters" in payload["snapshot"]


class TestGracefulDrain:
    def test_shutdown_drains_and_stops_the_fleet(self, planned_store):
        sup = Supervisor(
            planned_store,
            workers=1,
            heartbeat_interval=0.15,
            drain_timeout=5.0,
        ).start()
        client = ServeClient(sup.url, timeout=60.0)
        assert client.query(query_id=3) is not None
        assert client.shutdown() == {"status": "shutting down"}
        sup.join(timeout=30.0)
        assert all(handle.state == STOPPED for handle in sup.workers)
        assert all(handle.process.poll() is not None for handle in sup.workers)
        with pytest.raises(ServeError, match="cannot reach"):
            ServeClient(sup.url, max_retries=0).health()
