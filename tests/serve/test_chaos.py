"""Crash-fault injection: SIGKILL workers mid-request, prove the contract.

The seeded :class:`~repro.serve.chaos.ChaosMonkey` kills live workers while
clients hammer the fleet.  The supervised-serving contract under that abuse:

* zero wrong answers — every response that completes decodes equal to a
  fresh local restore of the same checkpoint, and repeated successes for the
  same request are byte-identical;
* interrupted requests fail *typed* (a :class:`ServeError` subclass), never
  with a truncated or corrupt body;
* availability recovers within the restart-backoff budget once the killing
  stops.
"""

import json
import threading
import time
import urllib.request

import pytest

from repro.exceptions import ServeError
from repro.serve.chaos import ChaosMonkey
from repro.serve.client import ServeClient
from repro.serve.supervisor import LIVE, Supervisor
from repro.store.checkpoint import open_readonly_session


@pytest.fixture(scope="module")
def supervisor(planned_store):
    sup = Supervisor(
        planned_store,
        workers=2,
        max_inflight=32,
        deadline_ms=30_000,
        cache_size=0,  # force every request through a real worker
        heartbeat_interval=0.1,
        heartbeat_misses=4,
        restart_backoff_base=0.05,
        restart_backoff_cap=0.5,
    ).start()
    yield sup
    sup.stop()


@pytest.fixture(scope="module")
def expected(planned_store):
    """Answers from a fresh local restore, per request shape."""
    session = open_readonly_session(planned_store)
    try:
        return {count: session.query_batch(count=count) for count in (1, 2, 3)}
    finally:
        session.close()


def wait_for_recovery(supervisor, client, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        payload = client.health()
        if (
            payload["workers_live"] == len(payload["workers"])
            and payload["restarts_total"] >= 1
        ):
            return payload
        time.sleep(0.2)
    raise AssertionError(
        f"fleet did not recover within {timeout}s: {client.health()!r}"
    )


class TestKillOnce:
    def test_sigkill_is_detected_restarted_and_accounted(
        self, supervisor, expected
    ):
        client = ServeClient(supervisor.url, timeout=60.0, retry_seed=0)
        assert client.query_batch(count=2) == expected[2]
        monkey = ChaosMonkey(supervisor, seed=11)
        old_pids = {h.index: h.pid for h in supervisor.workers}
        killed = monkey.kill_once()
        assert killed is not None
        assert monkey.kills[0]["index"] == killed

        payload = wait_for_recovery(supervisor, client)
        restarted = next(
            worker for worker in payload["workers"] if worker["index"] == killed
        )
        assert restarted["state"] == LIVE
        assert restarted["restarts"] >= 1
        assert restarted["pid"] != old_pids[killed]  # a fresh process
        # The replacement answers byte-for-byte like its predecessor did.
        assert client.query_batch(count=2) == expected[2]


class TestChaosSchedule:
    def test_no_wrong_answers_under_sustained_crashes(
        self, supervisor, expected
    ):
        stop = threading.Event()
        outcomes = []  # (count, "ok"|"typed"|"wrong"|"untyped", detail)
        lock = threading.Lock()

        def hammer(seed):
            client = ServeClient(
                supervisor.url,
                timeout=60.0,
                max_retries=3,
                retry_backoff_base=0.05,
                retry_seed=seed,
            )
            index = 0
            while not stop.is_set():
                count = (index + seed) % 3 + 1
                index += 1
                try:
                    answers = client.query_batch(count=count)
                except ServeError as exc:
                    with lock:
                        outcomes.append((count, "typed", repr(exc)))
                except Exception as exc:  # noqa: BLE001 - contract violation
                    with lock:
                        outcomes.append((count, "untyped", repr(exc)))
                else:
                    verdict = "ok" if answers == expected[count] else "wrong"
                    with lock:
                        outcomes.append((count, verdict, len(answers)))

        clients = [
            threading.Thread(target=hammer, args=(seed,), daemon=True)
            for seed in range(3)
        ]
        monkey = ChaosMonkey(
            supervisor, seed=5, min_interval=0.4, max_interval=0.8, max_kills=6
        )
        for thread in clients:
            thread.start()
        with monkey:
            time.sleep(4.0)
        stop.set()
        for thread in clients:
            thread.join(timeout=90.0)
            assert not thread.is_alive()

        assert monkey.kills, "the monkey never got to kill anything"
        kinds = [kind for _, kind, _ in outcomes]
        assert kinds.count("ok") > 0, f"no request ever completed: {outcomes!r}"
        # The contract: completed answers are never wrong, failures are
        # never untyped.  (Typed failures are allowed — that's the point.)
        assert kinds.count("wrong") == 0, [o for o in outcomes if o[1] == "wrong"]
        assert kinds.count("untyped") == 0, [
            o for o in outcomes if o[1] == "untyped"
        ]

        client = ServeClient(supervisor.url, timeout=60.0, retry_seed=9)
        payload = wait_for_recovery(supervisor, client)
        assert payload["status"] == "ok"
        assert payload["restarts_total"] >= 1
        # And the recovered fleet still answers exactly like a fresh restore.
        for count, answers in expected.items():
            assert client.query_batch(count=count) == answers

    def test_successful_responses_are_byte_identical(self, supervisor):
        """Raw wire bytes for one request never vary, whichever worker
        (or worker incarnation) produced them."""
        url = supervisor.url + "/query_batch"
        body = b'{"count": 2, "include_staleness": true}'
        bodies = set()
        monkey = ChaosMonkey(
            supervisor, seed=3, min_interval=0.4, max_interval=0.7, max_kills=2
        )
        with monkey:
            finish_at = time.monotonic() + 2.5
            while time.monotonic() < finish_at:
                request = urllib.request.Request(
                    url, data=body, headers={"Content-Type": "application/json"}
                )
                try:
                    with urllib.request.urlopen(request, timeout=60.0) as response:
                        bodies.add(response.read())
                except Exception:  # noqa: BLE001 - failures checked elsewhere
                    time.sleep(0.05)
        assert bodies, "no request completed during the chaos window"
        assert len(bodies) == 1, f"{len(bodies)} distinct wire encodings"
        decoded = json.loads(next(iter(bodies)))
        assert "answers" in decoded and len(decoded["answers"]) == 2


class TestChaosMonkeyConfig:
    def test_bad_intervals_are_rejected(self, supervisor):
        with pytest.raises(ValueError, match="min_interval"):
            ChaosMonkey(supervisor, min_interval=0.0)
        with pytest.raises(ValueError, match="min_interval"):
            ChaosMonkey(supervisor, min_interval=0.5, max_interval=0.1)

    def test_schedule_is_seed_deterministic(self, supervisor):
        a = ChaosMonkey(supervisor, seed=42)
        b = ChaosMonkey(supervisor, seed=42)
        assert [a.rng.uniform(0.2, 0.8) for _ in range(5)] == [
            b.rng.uniform(0.2, 0.8) for _ in range(5)
        ]
