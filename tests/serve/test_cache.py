"""The exact response cache: canonical keys, checkpoint digests, LRU bounds.

Caching served responses is only sound because answers are deterministic;
these tests pin the machinery that keeps it sound — request canonicalization
(one entry per *logical* request), the checkpoint digest (one namespace per
*checkpoint bytes*, delta chain included), and the admission/eviction rules.
"""

import pytest

from repro.exceptions import StoreError
from repro.serve.cache import (
    CACHEABLE_PATHS,
    ResponseCache,
    canonical_request_key,
    checkpoint_digest,
)
from repro.store import InMemoryBackend
from repro.store.checkpoint import CHECKPOINT_KIND


class TestCanonicalRequestKey:
    def test_json_spelling_does_not_split_entries(self):
        a = canonical_request_key("POST", "/query", b'{"count": 3, "policy": "flood"}')
        b = canonical_request_key(
            "POST", "/query", b'{ "policy":"flood",\n  "count":3 }'
        )
        assert a == b

    def test_different_payloads_differ(self):
        a = canonical_request_key("POST", "/query", b'{"count": 3}')
        b = canonical_request_key("POST", "/query", b'{"count": 4}')
        assert a != b

    def test_path_and_method_are_part_of_the_key(self):
        body = b'{"count": 3}'
        assert canonical_request_key("POST", "/query", body) != canonical_request_key(
            "POST", "/query_batch", body
        )

    def test_empty_body_equals_empty_object(self):
        assert canonical_request_key("POST", "/staleness", b"") == canonical_request_key(
            "POST", "/staleness", b"{}"
        )

    def test_non_json_body_still_keys(self):
        # The worker will 400 it (never cached), but the key must not crash.
        assert canonical_request_key("POST", "/query", b"\xff\xfe") != (
            canonical_request_key("POST", "/query", b"{}")
        )


class TestCheckpointDigest:
    def _backend_with(self, documents):
        backend = InMemoryBackend()
        for name, document in documents.items():
            backend.put(CHECKPOINT_KIND, name, document)
        return backend

    def test_identical_documents_digest_identically(self):
        doc = {"peers": 4, "seed": 0}
        a = self._backend_with({"session": dict(doc)})
        b = self._backend_with({"session": dict(doc)})
        assert checkpoint_digest(a, "session") == checkpoint_digest(b, "session")

    def test_any_document_change_changes_the_digest(self):
        a = self._backend_with({"session": {"peers": 4}})
        b = self._backend_with({"session": {"peers": 5}})
        assert checkpoint_digest(a, "session") != checkpoint_digest(b, "session")

    def test_delta_chain_bases_are_chained_in(self):
        base = {"peers": 4}
        shared = {"base": "older", "delta": True}
        a = self._backend_with({"older": dict(base), "session": dict(shared)})
        b = self._backend_with(
            {"older": {"peers": 4, "drift": 1}, "session": dict(shared)}
        )
        # The session documents are identical; only the *base* differs —
        # the digest must still differ, or stale answers would cache-hit.
        assert checkpoint_digest(a, "session") != checkpoint_digest(b, "session")

    def test_cyclic_chain_is_a_typed_error(self):
        backend = self._backend_with(
            {"a": {"base": "b"}, "b": {"base": "a"}}
        )
        with pytest.raises(StoreError, match="cyclic"):
            checkpoint_digest(backend, "a")


class TestResponseCache:
    def test_roundtrip_and_counters(self):
        cache = ResponseCache(4, checkpoint="d1")
        body = b'{"count": 1}'
        assert cache.lookup("POST", "/query", body) is None
        cache.store("POST", "/query", body, 200, "application/json", b'{"answer": 1}')
        assert cache.lookup("POST", "/query", body) == (
            200,
            "application/json",
            b'{"answer": 1}',
        )
        assert cache.stats_payload() == {
            "hits": 1,
            "misses": 1,
            "size": 1,
            "capacity": 4,
        }

    def test_only_success_on_cacheable_paths_is_admitted(self):
        cache = ResponseCache(4)
        cache.store("POST", "/query", b"{}", 400, "application/json", b'{"error": "x"}')
        cache.store("GET", "/health", b"", 200, "application/json", b"{}")
        assert len(cache) == 0
        assert cache.lookup("GET", "/health", b"") is None  # not even counted
        assert cache.stats_payload()["misses"] == 0

    def test_lru_eviction_is_bounded_and_recency_aware(self):
        cache = ResponseCache(2)
        for index in range(3):
            body = b'{"count": %d}' % index
            cache.store("POST", "/query", body, 200, "t", b"r%d" % index)
            if index == 1:
                # Touch entry 0 so entry 1 is the least recently used.
                assert cache.lookup("POST", "/query", b'{"count": 0}') is not None
        assert len(cache) == 2
        assert cache.lookup("POST", "/query", b'{"count": 0}') is not None
        assert cache.lookup("POST", "/query", b'{"count": 1}') is None  # evicted
        assert cache.lookup("POST", "/query", b'{"count": 2}') is not None

    def test_checkpoint_digest_namespaces_entries(self):
        cache = ResponseCache(4, checkpoint="d1")
        cache.store("POST", "/query", b"{}", 200, "t", b"old-answer")
        cache.checkpoint = "d2"  # the store now holds different bytes
        assert cache.lookup("POST", "/query", b"{}") is None

    def test_zero_capacity_disables(self):
        cache = ResponseCache(0)
        cache.store("POST", "/query", b"{}", 200, "t", b"r")
        assert cache.lookup("POST", "/query", b"{}") is None
        assert cache.stats_payload() == {
            "hits": 0,
            "misses": 0,
            "size": 0,
            "capacity": 0,
        }

    def test_negative_capacity_is_typed(self):
        with pytest.raises(StoreError, match="capacity"):
            ResponseCache(-1)

    def test_cacheable_paths_cover_the_query_surface(self):
        assert CACHEABLE_PATHS == {"/query", "/query_batch", "/staleness"}
