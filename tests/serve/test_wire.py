"""Wire codec: lossless-for-equality round trips through real JSON."""

import json

import pytest

from repro.exceptions import ServeError
from repro.serve import wire
from repro.store.checkpoint import restore_session
from repro.workloads.queries import paper_example_query


def _json_trip(payload):
    """Force an actual JSON round trip (tuples -> lists, key stringification)."""
    return json.loads(json.dumps(payload))


def test_planned_answer_round_trip(planned_store):
    answers = restore_session(planned_store).query_batch(
        count=4, required_results=5, include_staleness=True
    )
    for answer in answers:
        payload = _json_trip(wire.encode_answer(answer))
        assert wire.decode_answer(payload) == answer


def test_real_answer_with_approximate_round_trip(real_store):
    path, background = real_store
    query = paper_example_query()
    answer = restore_session(path, background=background).query(
        query=query, include_answer=True
    )
    assert answer.answer is not None, "the paper query must produce an answer"
    payload = _json_trip(wire.encode_answer(answer))
    decoded = wire.decode_answer(payload)
    assert decoded == answer
    # frozenset-typed labels must survive: equality on AnswerClass depends on it
    first = decoded.answer.classes[0]
    assert all(isinstance(labels, frozenset) for _, labels in first.interpretation)


def test_query_round_trip(real_store):
    query = paper_example_query()
    assert wire.decode_query(_json_trip(wire.encode_query(query))) == query


def test_staleness_round_trip(planned_store):
    snapshot = restore_session(planned_store).staleness()
    assert wire.decode_staleness(_json_trip(wire.encode_staleness(snapshot))) == snapshot


def test_batch_decode_helper(planned_store):
    answers = restore_session(planned_store).query_batch(count=3, required_results=5)
    payloads = _json_trip([wire.encode_answer(a) for a in answers])
    assert wire.decode_answers(payloads) == answers


def test_malformed_answer_payload_raises_serve_error():
    with pytest.raises(ServeError):
        wire.decode_answer({"routing": {}})


def test_malformed_query_payload_raises_serve_error():
    with pytest.raises(ServeError):
        wire.decode_query({"not": "a query"})
