"""Shared fixtures: checkpoints the serve tests open read-only."""

import pytest

from repro.core.config import ProtocolConfig
from repro.core.session import SystemBuilder
from repro.fuzzy.vocabularies import medical_background_knowledge
from repro.network.overlay import Overlay
from repro.network.topology import TopologyConfig
from repro.store.checkpoint import save_session
from repro.workloads.patients import MedicalWorkload, build_peer_databases
from repro.workloads.registry import default_registry


@pytest.fixture(scope="module")
def planned_store(tmp_path_factory):
    """A planned-content Table-3 style checkpoint (48 peers) in SQLite."""
    scenario = default_registry().scenario(
        "table3-default", peer_count=48, duration_seconds=600.0
    )
    session = scenario.builder().build()
    path = tmp_path_factory.mktemp("serve-planned") / "planned.sqlite"
    save_session(session, str(path))
    return str(path)


@pytest.fixture(scope="module")
def real_store(tmp_path_factory):
    """A real-content checkpoint (16 peers, medical workload) + background.

    Real-content checkpoints persist actual summary hierarchies, which is
    what the lazy-loading assertions need (planned checkpoints carry none).
    """
    overlay = Overlay.generate(TopologyConfig(peer_count=16, seed=3))
    background = medical_background_knowledge()
    workload = MedicalWorkload(records_per_peer=6, matching_fraction=0.25, seed=3)
    databases = build_peer_databases(overlay.peer_ids, workload)
    session = (
        SystemBuilder()
        .topology(overlay)
        .background(background)
        .protocol(ProtocolConfig(superpeer_fraction=1 / 8, construction_ttl=3))
        .real_content(databases)
        .seed(3)
        .build()
    )
    path = tmp_path_factory.mktemp("serve-real") / "real.sqlite"
    save_session(session, str(path))
    return str(path), background
