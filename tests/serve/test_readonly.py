"""Read-only serving sessions: concurrency, rollback, mutation rejection.

The acceptance bar for sharing one restored session across worker threads:
every request answers byte-identically to the first request after a fresh
restore — regardless of how many threads race, in what order requests land,
or how many requests came before — and every mutating operation raises the
typed :class:`ReadOnlySessionError`.
"""

import threading

import pytest

from repro.exceptions import ReadOnlySessionError
from repro.store.checkpoint import open_readonly_session, restore_session

REQUIRED = 5


def _expected(planned_store):
    fresh = restore_session(planned_store)
    return {
        "batch": fresh.query_batch(
            count=4, required_results=REQUIRED, include_staleness=True
        ),
        "staleness": restore_session(planned_store).staleness_batch(3),
        "single": restore_session(planned_store).query(required_results=REQUIRED),
    }


def test_threads_hammering_one_session_stay_byte_identical(planned_store):
    expected = _expected(planned_store)
    with open_readonly_session(planned_store) as session:
        results = {}
        errors = []

        def hammer(thread_id):
            try:
                seen = []
                for _ in range(5):
                    seen.append(
                        (
                            "batch",
                            session.query_batch(
                                count=4,
                                required_results=REQUIRED,
                                include_staleness=True,
                            ),
                        )
                    )
                    seen.append(("staleness", session.staleness_batch(3)))
                    seen.append(("single", session.query(required_results=REQUIRED)))
                results[thread_id] = seen
            except Exception as exc:  # noqa: BLE001 - surfaced via the assert
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(index,)) for index in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        assert len(results) == 8
        for seen in results.values():
            for kind, value in seen:
                assert value == expected[kind]


def test_sequential_requests_equal_fresh_restore(planned_store):
    expected = _expected(planned_store)
    with open_readonly_session(planned_store) as session:
        first = session.query_batch(
            count=4, required_results=REQUIRED, include_staleness=True
        )
        second = session.query_batch(
            count=4, required_results=REQUIRED, include_staleness=True
        )
        assert first == expected["batch"]
        assert second == first, "rollback must erase the first request"
        assert session.staleness_batch(3) == expected["staleness"]
        assert session.query(required_results=REQUIRED) == expected["single"]


def test_mutations_raise_typed_error(planned_store):
    with open_readonly_session(planned_store) as session:
        mutations = [
            lambda: session.run_until(10.0),
            lambda: session.attach_store(None),
            lambda: session.detach_store(),
            lambda: session.cold_start_domain("sp-0"),
            lambda: session.next_query_id(),
        ]
        for mutate in mutations:
            with pytest.raises(ReadOnlySessionError):
                mutate()


def test_closed_session_rejects_requests(planned_store):
    session = open_readonly_session(planned_store)
    assert not session.closed
    session.close()
    assert session.closed
    session.close()  # idempotent
    with pytest.raises(ReadOnlySessionError):
        session.query_batch(count=1)


def test_context_manager_closes(planned_store):
    with open_readonly_session(planned_store) as session:
        session.query(required_results=REQUIRED)
    assert session.closed


def test_matches_mutable_restore_after_close(planned_store):
    """Opening read-only must not disturb the stored checkpoint."""
    with open_readonly_session(planned_store) as session:
        served = session.query_batch(count=3, required_results=REQUIRED)
    assert served == restore_session(planned_store).query_batch(
        count=3, required_results=REQUIRED
    )
