"""ServeClient transport resilience: bounded jittered retry, typed errors.

A worker dying under a request shows up client-side as a connection reset; a
restarting server as connection refused.  Both are retried (safe — served
answers are deterministic) a bounded number of times with jittered backoff,
*except* for ``/shutdown`` where a reset usually means success.  Supervisor
failure responses map to the typed exceptions callers branch on.
"""

import json
import socket
import struct
import threading

import pytest

from repro.exceptions import (
    ServeDeadlineError,
    ServeError,
    ServeOverloadError,
    WorkerCrashError,
)
from repro.obs.registry import MetricsRegistry
from repro.serve.client import ServeClient


class StubServer(threading.Thread):
    """Resets the first ``failures`` connections, then serves ``response``."""

    def __init__(self, failures=0, status=200, headers=(), body=b'{"status": "ok"}'):
        super().__init__(daemon=True)
        self.failures = failures
        self.status = status
        self.extra_headers = headers
        self.body = body
        self.connections = 0
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self._stop = threading.Event()

    @property
    def url(self):
        return f"http://127.0.0.1:{self._sock.getsockname()[1]}"

    def run(self):
        while not self._stop.is_set():
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            self.connections += 1
            if self.connections <= self.failures:
                # SO_LINGER with zero timeout turns close() into a hard RST —
                # exactly what a SIGKILLed worker's kernel sends.
                conn.setsockopt(
                    socket.SOL_SOCKET,
                    socket.SO_LINGER,
                    struct.pack("ii", 1, 0),
                )
                conn.close()
                continue
            conn.recv(65536)
            headers = [
                f"HTTP/1.0 {self.status} X",
                "Content-Type: application/json",
                f"Content-Length: {len(self.body)}",
                *[f"{name}: {value}" for name, value in self.extra_headers],
            ]
            conn.sendall(
                ("\r\n".join(headers) + "\r\n\r\n").encode() + self.body
            )
            conn.close()

    def stop(self):
        self._stop.set()
        self._sock.close()


@pytest.fixture
def stub(request):
    servers = []

    def make(**kwargs):
        server = StubServer(**kwargs)
        server.start()
        servers.append(server)
        return server

    yield make
    for server in servers:
        server.stop()


def fast_client(url, **kwargs):
    kwargs.setdefault("max_retries", 3)
    kwargs.setdefault("retry_backoff_base", 0.01)
    kwargs.setdefault("retry_seed", 0)
    return ServeClient(url, timeout=5.0, **kwargs)


class TestConnectionRetry:
    def test_reset_connections_are_retried_to_success(self, stub):
        server = stub(failures=2)
        registry = MetricsRegistry()
        client = fast_client(server.url, registry=registry)
        assert client.health() == {"status": "ok"}
        assert client.retries_total == 2
        snapshot = registry.snapshot()
        counted = sum(
            value
            for _, value in snapshot["counters"]["repro_client_retries_total"]
        )
        assert counted == 2

    def test_connection_refused_is_retried_then_typed(self):
        # Grab a port with no listener: every attempt is refused.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = fast_client(f"http://127.0.0.1:{port}", max_retries=2)
        with pytest.raises(ServeError, match="cannot reach query service"):
            client.health()
        assert client.retries_total == 2  # bounded: initial + 2 retries

    def test_retry_budget_is_bounded(self, stub):
        server = stub(failures=100)
        client = fast_client(server.url, max_retries=2)
        with pytest.raises(ServeError, match="cannot reach query service"):
            client.health()
        assert client.retries_total == 2
        assert server.connections == 3

    def test_shutdown_is_never_retried(self, stub):
        server = stub(failures=100)
        client = fast_client(server.url)
        with pytest.raises(ServeError, match="cannot reach query service"):
            client.shutdown()
        assert client.retries_total == 0
        assert server.connections == 1


class TestTypedServerErrors:
    def test_503_maps_to_overload_with_retry_after(self, stub):
        body = json.dumps(
            {"error": "shed", "type": "ServeOverloadError", "retry_after": 2.5}
        ).encode()
        server = stub(status=503, headers=[("Retry-After", "9")], body=body)
        client = fast_client(server.url)
        with pytest.raises(ServeOverloadError, match="shed") as excinfo:
            client.health()
        assert excinfo.value.retry_after == 2.5  # body wins over header

    def test_503_retry_after_header_fallback(self, stub):
        server = stub(status=503, headers=[("Retry-After", "4")], body=b"{}")
        client = fast_client(server.url)
        with pytest.raises(ServeOverloadError) as excinfo:
            client.health()
        assert excinfo.value.retry_after == 4.0

    def test_504_maps_to_deadline_error(self, stub):
        body = json.dumps(
            {"error": "over budget", "type": "ServeDeadlineError"}
        ).encode()
        server = stub(status=504, body=body)
        client = fast_client(server.url)
        with pytest.raises(ServeDeadlineError, match="over budget"):
            client.health()

    def test_502_maps_to_worker_crash_error(self, stub):
        body = json.dumps(
            {"error": "no worker survived", "type": "WorkerCrashError"}
        ).encode()
        server = stub(status=502, body=body)
        client = fast_client(server.url)
        with pytest.raises(WorkerCrashError, match="no worker survived"):
            client.health()

    def test_400_stays_a_plain_serve_error(self, stub):
        body = json.dumps({"error": "bad payload", "type": "ServeError"}).encode()
        server = stub(status=400, body=body)
        client = fast_client(server.url)
        with pytest.raises(ServeError, match="bad payload") as excinfo:
            client.health()
        assert type(excinfo.value) is ServeError
