"""The HTTP daemon: served answers == local restore, lazy loading, lifecycle.

The tentpole acceptance test lives here: a ``query_batch`` posed over
HTTP/JSON against ``repro serve``'s in-process equivalent returns answers
*equal* to ``NetworkSession.query_batch`` on a fresh restore of the same
checkpoint, and lazy loading materializes only the hierarchies the queries
actually touch (asserted via the snapshot-fetch counters).
"""

import pytest

from repro.exceptions import ServeError
from repro.serve import ServeClient, start_server
from repro.store.checkpoint import open_readonly_session, restore_session
from repro.workloads.queries import paper_example_query

REQUIRED = 5


@pytest.fixture
def served(planned_store):
    session = open_readonly_session(planned_store)
    server = start_server(session, close_session_on_stop=True)
    yield server, ServeClient(server.url), session
    if not session.closed:
        server.stop()


def test_http_query_batch_equals_local_restore(served, planned_store):
    _server, client, _session = served
    over_http = client.query_batch(
        count=6, required_results=REQUIRED, include_staleness=True
    )
    local = restore_session(planned_store).query_batch(
        count=6, required_results=REQUIRED, include_staleness=True
    )
    assert over_http == local


def test_http_single_query_and_staleness_equal_local(served, planned_store):
    _server, client, _session = served
    assert client.query(required_results=REQUIRED) == restore_session(
        planned_store
    ).query(required_results=REQUIRED)
    assert client.staleness() == restore_session(planned_store).staleness()
    assert client.staleness_batch(3) == restore_session(
        planned_store
    ).staleness_batch(3)


def test_health_and_stats(served):
    _server, client, session = served
    health = client.health()
    assert health["status"] == "ok"
    assert health["peers"] == session.overlay.size
    assert health["domains"] == len(session.domains)

    client.query_batch(count=2, required_results=REQUIRED)
    stats = client.stats()
    assert stats["requests"]["query_batch"] == 1
    assert stats["queries_answered"] == 2
    assert stats["lazy"] == session.hierarchy_source.stats_payload()


def test_unknown_path_is_404(served):
    _server, client, _session = served
    with pytest.raises(ServeError, match="404"):
        client._request("GET", "/nope")


def test_bad_payload_is_400_with_type(served):
    _server, client, _session = served
    with pytest.raises(ServeError, match="unknown routing policy"):
        client._request("POST", "/query", {"policy": "bogus"})
    with pytest.raises(ServeError, match="400"):
        client._request("POST", "/query", {"query": {"not": "a query"}})


def test_shutdown_endpoint_stops_server_and_closes_session(served):
    server, client, session = served
    assert client.shutdown() == {"status": "shutting down"}
    server.join(timeout=10.0)
    assert session.closed
    with pytest.raises(ServeError, match="cannot reach"):
        client.health()


def test_lazy_loading_materializes_only_touched_hierarchies(real_store):
    path, background = real_store
    session = open_readonly_session(path, background=background)
    server = start_server(session, close_session_on_stop=True)
    try:
        client = ServeClient(server.url)
        source = session.hierarchy_source
        assert source.fetches == 0, "opening must not materialize hierarchies"

        query = paper_example_query()
        over_http = client.query_batch(queries=[query, query], include_answer=True)
        local = restore_session(path, background=background).query_batch(
            queries=[query, query], include_answer=True
        )
        assert over_http == local

        visited = {
            outcome.domain_id
            for answer in over_http
            for outcome in answer.routing.domain_outcomes
        }
        assert visited, "the paper query must reach at least one domain"
        # Only the visited domains' global summaries were pulled from the
        # snapshot store; every per-peer local summary stays pending.
        assert source.fetches == len(visited)
        pending = [
            service.summary_pending
            for service in session.system.services.values()
        ]
        assert pending and all(pending)
    finally:
        if not session.closed:
            server.stop()
