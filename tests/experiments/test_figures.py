"""Integration tests: small-scale runs of every figure/table experiment.

These use reduced network sizes and durations so the whole suite stays fast,
but they execute exactly the code paths the benchmarks use and assert the
qualitative shapes the paper reports.
"""

import pytest

from repro.experiments.fig4_stale_answers import run_figure4
from repro.experiments.fig5_false_negatives import run_figure5
from repro.experiments.fig6_update_cost import cost_increase_factor, run_figure6
from repro.experiments.fig7_query_cost import run_figure7
from repro.experiments.runner import run_maintenance_simulation, run_query_cost_comparison
from repro.experiments.tables import run_table1_table2, run_table3
from repro.workloads.scenarios import SimulationScenario


class TestTables:
    def test_table1_table2_exact_mapping(self):
        table = run_table1_table2()
        assert len(table.rows) == 3
        counts = sorted(table.column("tuple_count"), reverse=True)
        assert counts == pytest.approx([2.0, 0.7, 0.3])
        labels = {(row["age_label"], row["bmi_label"]) for row in table.rows}
        assert labels == {
            ("young", "underweight"),
            ("young", "normal"),
            ("adult", "normal"),
        }

    def test_table3_lists_all_parameters(self):
        table = run_table3()
        parameters = set(table.column("parameter"))
        assert "number_of_peers" in parameters
        assert "freshness_threshold_alpha" in parameters


class TestMaintenanceRunner:
    def test_maintenance_run_collects_snapshots_and_messages(self):
        scenario = SimulationScenario(
            peer_count=32, alpha=0.3, duration_seconds=2 * 3600.0, seed=1
        )
        run = run_maintenance_simulation(scenario, snapshot_interval_seconds=1800.0)
        assert run.domain_size == 32
        assert run.snapshots
        assert run.update_messages >= 0
        assert 0.0 <= run.mean_worst_stale_fraction <= 1.0


class TestFigure4:
    def test_stale_answers_grow_with_alpha(self):
        table = run_figure4(
            domain_sizes=[32], alphas=[0.1, 0.8], duration_seconds=4 * 3600.0, seed=2
        )
        low = table.filter(alpha=0.1)[0]["stale_fraction"]
        high = table.filter(alpha=0.8)[0]["stale_fraction"]
        assert high > low

    def test_stale_answers_bounded(self):
        table = run_figure4(
            domain_sizes=[48], alphas=[0.3], duration_seconds=4 * 3600.0, seed=3
        )
        fraction = table.rows[0]["stale_fraction"]
        assert 0.0 <= fraction <= 0.5


class TestFigure5:
    def test_false_negatives_small_and_below_worst_case(self):
        table = run_figure5(domain_sizes=[48], duration_seconds=4 * 3600.0, seed=4)
        row = table.rows[0]
        assert row["false_negative_fraction"] <= row["worst_stale_fraction"]
        assert row["false_negative_fraction"] <= 0.15
        assert row["reduction_factor"] >= 1.0


class TestFigure6:
    def test_update_cost_shapes(self):
        table = run_figure6(
            domain_sizes=[16, 48], alphas=(0.3, 0.8), duration_seconds=4 * 3600.0, seed=5
        )
        # Total messages grow with the domain size.
        alpha_03 = table.filter(alpha=0.3)
        assert alpha_03[1]["total_messages"] >= alpha_03[0]["total_messages"]
        # Lowering alpha costs more (but stays within an order of magnitude).
        factor = cost_increase_factor(table, 0.3, 0.8)
        assert 1.0 <= factor <= 10.0


class TestFigure7:
    def test_query_cost_ordering(self):
        table = run_figure7(network_sizes=[64, 128], queries_per_size=5, seed=6)
        for row in table.rows:
            assert row["centralized_messages"] <= row["sq_messages"]
            assert row["sq_messages"] <= row["flooding_messages"]

    def test_sq_advantage_grows_or_holds_with_size(self):
        table = run_figure7(network_sizes=[64, 256], queries_per_size=5, seed=7)
        ratios = table.column("flooding_over_sq")
        assert all(ratio > 1.0 for ratio in ratios)

    def test_runner_row_structure(self):
        run = run_query_cost_comparison(peer_count=64, query_count=3, seed=8)
        row = run.as_row()
        assert set(row) == {
            "peers",
            "sq_messages",
            "flooding_messages",
            "centralized_messages",
            "sq_model",
            "centralized_model",
        }
