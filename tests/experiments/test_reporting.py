"""Unit tests for experiment result tables."""

import json

import pytest

from repro.experiments.reporting import ExperimentTable


@pytest.fixture
def table():
    table = ExperimentTable(
        name="demo",
        columns=["x", "y"],
        expectation="y grows with x",
        parameters={"seed": 0},
    )
    table.add_row(x=1, y=2.0)
    table.add_row(x=2, y=4.0)
    return table


class TestExperimentTable:
    def test_add_row_requires_all_columns(self, table):
        with pytest.raises(ValueError):
            table.add_row(x=3)

    def test_column_extraction(self, table):
        assert table.column("x") == [1, 2]
        assert table.column("y") == [2.0, 4.0]

    def test_filter(self, table):
        assert table.filter(x=2) == [{"x": 2, "y": 4.0}]
        assert table.filter(x=99) == []

    def test_to_text_contains_headers_rows_and_expectation(self, table):
        text = table.to_text()
        assert "demo" in text
        assert "x" in text and "y" in text
        assert "y grows with x" in text
        assert "seed=0" in text

    def test_to_text_on_empty_table(self):
        empty = ExperimentTable(name="empty", columns=["a"])
        assert "empty" in empty.to_text()

    def test_to_json_round_trip(self, table):
        payload = json.loads(table.to_json())
        assert payload["name"] == "demo"
        assert payload["rows"] == [{"x": 1, "y": 2.0}, {"x": 2, "y": 4.0}]

    def test_float_formatting(self, table):
        table.add_row(x=3, y=123456.789)
        assert "1.235e+05" in table.to_text()

    def test_str_equals_to_text(self, table):
        assert str(table) == table.to_text()
