"""Delta checkpoints: structural diff/patch and delta-chain restore.

The acceptance bar: a session checkpointed as a delta chain — full base, then
deltas on top, taken mid-simulation under churn — restores byte-identically
on every backend, and the delta documents are materially smaller than full
checkpoints.
"""

import random

import pytest

from repro.core.session import SystemBuilder
from repro.exceptions import StoreError
from repro.store import (
    CHECKPOINT_KIND,
    InMemoryBackend,
    JsonDirectoryBackend,
    SqliteBackend,
    apply_patch,
    checkpoint_base_chain,
    diff_documents,
    list_checkpoints,
)
from repro.store.deltas import canonical_roundtrip
from repro.workloads.registry import default_registry


@pytest.fixture(params=["memory", "json", "sqlite"])
def backend(request, tmp_path):
    if request.param == "memory":
        yield InMemoryBackend()
    elif request.param == "json":
        yield JsonDirectoryBackend(tmp_path / "store")
    else:
        store = SqliteBackend(tmp_path / "store.sqlite")
        yield store
        store.close()


def _build(scenario_name, **overrides):
    scenario = default_registry().scenario(scenario_name, **overrides)
    return scenario.apply_dynamics(scenario.builder()).build()


def _drive(session, queries=8, required=3):
    session.run_until()
    answers = [session.query(required_results=required) for _ in range(queries)]
    return {
        "routing": [answer.routing for answer in answers],
        "staleness": [answer.staleness for answer in answers],
        "traffic": session.traffic(),
        "maintenance": session.maintenance_report(),
    }


class TestDiffPatch:
    """apply_patch(base, diff_documents(base, new)) == new, exactly."""

    CASES = [
        ({}, {}),
        ({"a": 1}, {"a": 1}),
        ({"a": 1}, {"a": 2}),
        ({"a": 1}, {"b": 2}),
        ({"a": 1, "b": 2}, {"a": 1}),
        ({"a": [1, 2, 3]}, {"a": [1, 9, 3]}),
        ({"a": [1, 2]}, {"a": [1, 2, 3]}),
        ({"a": {"b": {"c": [0] * 50}}}, {"a": {"b": {"c": [0] * 49 + [1]}}}),
        ({"a": 1}, {"a": 1.0}),
        ({"a": True}, {"a": 1}),
        ({"a": None}, {"a": 0}),
        ({"a": [{"x": 1}, {"y": 2}]}, {"a": [{"x": 1}, {"y": 3}]}),
        ({"a": "text"}, {"a": ["now", "a", "list"]}),
    ]

    @pytest.mark.parametrize("base,new", CASES)
    def test_roundtrip_exact(self, base, new):
        patch = diff_documents(base, new)
        assert apply_patch(base, patch) == new

    @pytest.mark.parametrize("base,new", CASES)
    def test_roundtrip_preserves_scalar_types(self, base, new):
        result = apply_patch(base, diff_documents(base, new))
        assert canonical_roundtrip(result) == canonical_roundtrip(new)
        # Stricter than ==: the canonical JSON text must match too (1 vs 1.0,
        # True vs 1), or a resolved delta would not be byte-identical.
        import json

        assert json.dumps(result, sort_keys=True) == json.dumps(new, sort_keys=True)

    def test_random_documents_roundtrip(self):
        rng = random.Random(42)

        def random_document(depth=0):
            kind = rng.random()
            if depth >= 3 or kind < 0.3:
                return rng.choice(
                    [None, True, False, rng.randint(-5, 5), rng.random(), "s"]
                )
            if kind < 0.65:
                return [random_document(depth + 1) for _ in range(rng.randint(0, 5))]
            return {
                f"k{i}": random_document(depth + 1) for i in range(rng.randint(0, 5))
            }

        def mutate(document):
            if isinstance(document, dict) and document and rng.random() < 0.7:
                key = rng.choice(sorted(document))
                copy = dict(document)
                copy[key] = mutate(copy[key])
                return copy
            if isinstance(document, list) and document and rng.random() < 0.7:
                copy = list(document)
                copy[rng.randrange(len(copy))] = random_document(2)
                return copy
            return random_document(1)

        for _ in range(200):
            base = canonical_roundtrip({"doc": random_document()})
            new = canonical_roundtrip(mutate(base))
            assert apply_patch(base, diff_documents(base, new)) == new

    def test_unchanged_subtrees_are_absent_from_patch(self):
        base = {"big": list(range(1000)), "small": 1}
        new = {"big": list(range(1000)), "small": 2}
        patch = diff_documents(base, new)
        assert "big" not in patch["$dict"]

    def test_malformed_patch_raises(self):
        with pytest.raises(StoreError, match="patch"):
            apply_patch({"a": 1}, {"$bogus": 1})
        with pytest.raises(StoreError, match="expects an object"):
            apply_patch([1], {"$dict": {"a": {"$set": 1}}})
        with pytest.raises(StoreError, match="expects an array"):
            apply_patch({"a": 1}, {"$list": [[0, {"$set": 1}]]})


class TestDeltaCheckpoints:
    def test_delta_chain_restores_byte_identically_under_churn(self, backend):
        """Full base → delta → delta, all mid-simulation; restore == live."""
        scenario_name = "churn-heavy"
        reference_session = _build(scenario_name)
        horizon = reference_session.horizon
        reference_session.run_until(0.8 * horizon)
        reference = _drive(reference_session)

        live = _build(scenario_name)
        live.run_until(0.3 * horizon)
        live.checkpoint(backend, name="base")
        live.run_until(0.6 * horizon)
        live.checkpoint(backend, name="mid", base="base")
        live.run_until(0.8 * horizon)
        assert live.system.simulator.pending_events > 0
        live.checkpoint(backend, name="late", base="mid")

        assert checkpoint_base_chain(backend, "late") == ["late", "mid", "base"]
        restored = SystemBuilder.from_checkpoint(backend, name="late")
        assert restored.now == live.now
        result = _drive(restored)
        assert result == reference

    def test_delta_resolves_to_full_payload(self, backend):
        """A delta's resolved payload equals the full checkpoint's document."""
        from repro.store.checkpoint import resolve_checkpoint_payload

        live = _build("smoke")
        live.run_until(0.5 * live.horizon)
        live.checkpoint(backend, name="base")
        live.run_until()
        live.checkpoint(backend, name="tip", base="base")
        live.checkpoint(backend, name="tip-full")

        assert resolve_checkpoint_payload(backend, "tip") == backend.get(
            CHECKPOINT_KIND, "tip-full"
        )

    def test_delta_is_smaller_than_full(self, backend):
        live = _build("table3-default")
        live.run_until(0.4 * live.horizon)
        live.checkpoint(backend, name="base")
        live.run_until(0.5 * live.horizon)
        live.checkpoint(backend, name="delta", base="base")
        live.checkpoint(backend, name="full")

        delta_bytes = backend.size_bytes(CHECKPOINT_KIND, "delta")
        full_bytes = backend.size_bytes(CHECKPOINT_KIND, "full")
        # "Materially smaller": the topology/peer bulk must not be re-stored.
        assert delta_bytes < 0.5 * full_bytes

    def test_restore_from_intermediate_link_works(self, backend):
        live = _build("smoke")
        live.run_until(0.5 * live.horizon)
        live.checkpoint(backend, name="base")
        reference = _drive(_restored_clone(backend, "base"))
        live.run_until()
        live.checkpoint(backend, name="tip", base="base")
        # The base link is still a valid checkpoint of the earlier moment.
        assert _drive(SystemBuilder.from_checkpoint(backend, name="base")) == reference
        assert list_checkpoints(backend) == ["base", "tip"]

    def test_missing_base_raises_with_chain_context(self, backend):
        live = _build("smoke")
        live.checkpoint(backend, name="base")
        live.checkpoint(backend, name="tip", base="base")
        backend.delete(CHECKPOINT_KIND, "base")
        with pytest.raises(StoreError, match="base of 'tip'"):
            SystemBuilder.from_checkpoint(backend, name="tip")

    def test_delta_against_unknown_base_refuses(self, backend):
        live = _build("smoke")
        with pytest.raises(StoreError, match="no checkpoint 'nope'"):
            live.checkpoint(backend, name="tip", base="nope")
        assert not backend.contains(CHECKPOINT_KIND, "tip")

    def test_delta_of_itself_refuses(self, backend):
        live = _build("smoke")
        live.checkpoint(backend, name="self")
        with pytest.raises(StoreError, match="itself"):
            live.checkpoint(backend, name="self", base="self")

    def test_indirect_cycle_refused_at_save(self, backend):
        """Overwriting a base with a delta of its own descendant must refuse."""
        live = _build("smoke")
        live.checkpoint(backend, name="a")
        live.checkpoint(backend, name="b", base="a")
        with pytest.raises(StoreError, match="resolves through"):
            live.checkpoint(backend, name="a", base="b")
        # The full checkpoint survived the refused save; both still restore.
        SystemBuilder.from_checkpoint(backend, name="a")
        SystemBuilder.from_checkpoint(backend, name="b")

    def test_cyclic_chain_detected(self, backend):
        backend.put(
            CHECKPOINT_KIND, "a", {"format": 1, "base": "b", "patch": {"$dict": {}}}
        )
        backend.put(
            CHECKPOINT_KIND, "b", {"format": 1, "base": "a", "patch": {"$dict": {}}}
        )
        with pytest.raises(StoreError, match="cyclic"):
            SystemBuilder.from_checkpoint(backend, name="a")

    def test_delta_on_delta_of_real_content(self, backend):
        """Real-content sessions (with snapshots) delta just as well."""
        from repro.core.config import ProtocolConfig
        from repro.fuzzy.vocabularies import medical_background_knowledge
        from repro.network.overlay import Overlay
        from repro.network.topology import TopologyConfig
        from repro.saintetiq.serialization import hierarchy_content_hash
        from repro.workloads.patients import MedicalWorkload, build_peer_databases

        overlay = Overlay.generate(TopologyConfig(peer_count=12, seed=5))
        background = medical_background_knowledge()
        workload = MedicalWorkload(records_per_peer=5, matching_fraction=0.25, seed=5)
        databases = build_peer_databases(overlay.peer_ids, workload)
        live = (
            SystemBuilder()
            .topology(overlay)
            .background(background)
            .protocol(ProtocolConfig(superpeer_fraction=1 / 6, construction_ttl=3))
            .real_content(databases)
            .seed(5)
            .build()
        )
        live.checkpoint(backend, name="base")
        live.checkpoint(backend, name="tip", base="base")
        restored = SystemBuilder.from_checkpoint(
            backend, name="tip", background=background
        )
        for peer_id, service in live.system.services.items():
            assert hierarchy_content_hash(
                restored.system.services[peer_id].summary
            ) == hierarchy_content_hash(service.summary)


def _restored_clone(backend, name):
    return SystemBuilder.from_checkpoint(backend, name=name)
