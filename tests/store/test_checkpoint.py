"""Session checkpoint/restore: byte-identical continuation guarantees.

The acceptance bar of the store subsystem: a session checkpointed to any
backend and restored via ``SystemBuilder.from_checkpoint`` answers queries
with routing results, staleness snapshots and traffic reports *equal* to the
never-persisted session — including checkpoints taken mid-simulation with
churn and modification events still pending.
"""

import dataclasses

import pytest

from repro.core.config import ProtocolConfig
from repro.core.session import SystemBuilder
from repro.exceptions import StoreError
from repro.fuzzy.vocabularies import medical_background_knowledge
from repro.network.overlay import Overlay
from repro.network.topology import TopologyConfig
from repro.saintetiq.serialization import hierarchy_content_hash
from repro.store import (
    InMemoryBackend,
    JsonDirectoryBackend,
    SessionCache,
    SqliteBackend,
)
from repro.store.checkpoint import list_checkpoints
from repro.workloads.patients import MedicalWorkload, build_peer_databases
from repro.workloads.queries import paper_example_query
from repro.workloads.registry import default_registry


@pytest.fixture(params=["memory", "json", "sqlite"])
def backend(request, tmp_path):
    if request.param == "memory":
        yield InMemoryBackend()
    elif request.param == "json":
        yield JsonDirectoryBackend(tmp_path / "store")
    else:
        store = SqliteBackend(tmp_path / "store.sqlite")
        yield store
        store.close()


def _build(scenario_name, **overrides):
    scenario = default_registry().scenario(scenario_name, **overrides)
    return scenario.apply_dynamics(scenario.builder()).build()


def _drive(session, queries=8, required=3):
    """Run the session to its horizon and collect every observable output."""
    session.run_until()
    answers = [session.query(required_results=required) for _ in range(queries)]
    return {
        "routing": [answer.routing for answer in answers],
        "staleness": [answer.staleness for answer in answers],
        "traffic": session.traffic(),
        "maintenance": session.maintenance_report(),
        "final_staleness": session.staleness(),
    }


def _assert_identical(reference, restored):
    assert restored["routing"] == reference["routing"]
    assert restored["staleness"] == reference["staleness"]
    assert restored["traffic"] == reference["traffic"]
    assert restored["maintenance"] == reference["maintenance"]
    assert restored["final_staleness"] == reference["final_staleness"]


class TestTable3Scenarios:
    """The named Table-3 scenarios restore byte-identically on every backend."""

    @pytest.mark.parametrize(
        "scenario_name", ["table3-default", "churn-heavy", "high-freshness"]
    )
    def test_fresh_checkpoint_continues_identically(self, backend, scenario_name):
        reference = _drive(_build(scenario_name))

        live = _build(scenario_name)
        live.checkpoint(backend, name=scenario_name)
        restored = SystemBuilder.from_checkpoint(backend, name=scenario_name)
        _assert_identical(reference, _drive(restored))

    def test_smoke_scenario_via_session_facade(self, backend):
        reference = _drive(_build("smoke"), queries=5, required=2)
        live = _build("smoke")
        assert live.checkpoint(backend) == "session"
        restored = SystemBuilder.from_checkpoint(backend)
        _assert_identical(reference, _drive(restored, queries=5, required=2))

    def test_restored_metadata_matches(self, backend):
        live = _build("smoke")
        live.checkpoint(backend)
        restored = SystemBuilder.from_checkpoint(backend)
        assert restored.horizon == live.horizon
        assert restored.now == live.now
        assert restored.overlay.peer_ids == live.overlay.peer_ids
        assert list(restored.domains) == list(live.domains)
        assert restored.config == live.config
        assert restored.planned


class TestCheckpointUnderChurn:
    """Checkpoint mid-simulation, after departures/rejoins already happened."""

    @pytest.mark.parametrize("when", [0.25, 0.5, 0.9])
    def test_mid_simulation_checkpoint_continues_identically(self, tmp_path, when):
        scenario_name = "churn-heavy"
        store = SqliteBackend(tmp_path / "mid.sqlite")

        reference_session = _build(scenario_name)
        horizon = reference_session.horizon
        reference_session.run_until(when * horizon)
        reference = _drive(reference_session)

        live = _build(scenario_name)
        live.run_until(when * horizon)
        # Real churn already executed and more events are still pending.
        assert live.system.simulator.processed_events > 0
        assert live.system.simulator.pending_events > 0
        live.checkpoint(store, name="mid")

        restored = SystemBuilder.from_checkpoint(store, name="mid")
        assert restored.now == live.now
        _assert_identical(reference, _drive(restored))
        store.close()

    def test_interleaved_queries_then_checkpoint(self, tmp_path):
        """Queries before the checkpoint advance RNG/plan state that must persist."""
        reference_session = _build("table3-default")
        reference_session.run_until(3600.0)
        early_reference = [reference_session.query() for _ in range(4)]
        reference = _drive(reference_session)

        live = _build("table3-default")
        live.run_until(3600.0)
        early_live = [live.query() for _ in range(4)]
        assert [a.routing for a in early_live] == [a.routing for a in early_reference]
        live.checkpoint(tmp_path / "store")

        restored = SystemBuilder.from_checkpoint(tmp_path / "store")
        _assert_identical(reference, _drive(restored))


class TestRealContent:
    @pytest.fixture
    def real_session_factory(self):
        def factory():
            overlay = Overlay.generate(TopologyConfig(peer_count=16, seed=3))
            background = medical_background_knowledge()
            workload = MedicalWorkload(
                records_per_peer=6, matching_fraction=0.25, seed=3
            )
            databases = build_peer_databases(overlay.peer_ids, workload)
            session = (
                SystemBuilder()
                .topology(overlay)
                .background(background)
                .protocol(ProtocolConfig(superpeer_fraction=1 / 8, construction_ttl=3))
                .real_content(databases)
                .seed(3)
                .build()
            )
            return background, session

        return factory

    def test_real_content_roundtrip(self, backend, real_session_factory):
        query = paper_example_query()
        _background, reference = real_session_factory()
        reference_answers = [reference.query(query=query) for _ in range(3)]

        background, live = real_session_factory()
        live.checkpoint(backend, name="real")
        restored = SystemBuilder.from_checkpoint(
            backend, name="real", background=background
        )
        restored_answers = [restored.query(query=query) for _ in range(3)]

        assert [a.routing for a in restored_answers] == [
            a.routing for a in reference_answers
        ]
        for expected, actual in zip(reference_answers, restored_answers):
            if expected.answer is None:
                assert actual.answer is None
                continue
            assert [
                (c.interpretation, c.tuple_count) for c in actual.answer.classes
            ] == [(c.interpretation, c.tuple_count) for c in expected.answer.classes]
        # Every local summary rehydrates byte-identically.
        for peer_id, service in live.system.services.items():
            assert hierarchy_content_hash(
                restored.system.services[peer_id].summary
            ) == hierarchy_content_hash(service.summary)

    def test_real_restore_requires_background(self, backend, real_session_factory):
        _background, live = real_session_factory()
        live.checkpoint(backend, name="real")
        with pytest.raises(StoreError, match="background"):
            SystemBuilder.from_checkpoint(backend, name="real")

    def test_snapshots_shared_across_checkpoints(self, backend, real_session_factory):
        """Content addressing dedups hierarchies between two checkpoints."""
        from repro.store import SnapshotStore

        _background, live = real_session_factory()
        live.checkpoint(backend, name="first")
        count_after_first = len(SnapshotStore(backend).hashes())
        live.checkpoint(backend, name="second")
        assert len(SnapshotStore(backend).hashes()) == count_after_first
        assert list_checkpoints(backend) == ["first", "second"]


class TestSessionCache:
    def test_warm_start_is_identical_and_skips_construction(self, tmp_path):
        cache = SessionCache(tmp_path / "cache")
        scenario = default_registry().scenario("smoke")
        parameters = dict(dataclasses.asdict(scenario))

        def factory():
            return scenario.apply_dynamics(scenario.builder()).build()

        cold, cold_warm = cache.get_or_build(parameters, factory)
        assert not cold_warm and cache.misses == 1
        warm, warm_hit = cache.get_or_build(parameters, factory)
        assert warm_hit and cache.hits == 1
        _assert_identical(_drive(cold, queries=5), _drive(warm, queries=5))

    def test_different_parameters_miss(self, tmp_path):
        cache = SessionCache(tmp_path / "cache")
        scenario = default_registry().scenario("smoke")

        def factory():
            return scenario.apply_dynamics(scenario.builder()).build()

        cache.get_or_build({"seed": 0}, factory)
        cache.get_or_build({"seed": 1}, factory)
        assert cache.misses == 2 and cache.hits == 0


class TestErrors:
    def test_missing_checkpoint_lists_known_names(self, backend):
        _build("smoke").checkpoint(backend, name="known")
        with pytest.raises(StoreError, match="known"):
            SystemBuilder.from_checkpoint(backend, name="unknown")

    def test_unspecced_pending_event_refuses_checkpoint(self, backend):
        live = _build("smoke")
        live.system.simulator.schedule(10.0, lambda: None, label="ad-hoc")
        with pytest.raises(StoreError, match="ad-hoc"):
            live.checkpoint(backend)

    def test_checkpoint_without_content_refuses(self, backend):
        session = (
            SystemBuilder()
            .topology(peer_count=8)
            .planned_content(hit_rate=0.2)
            .build()
        )
        session.system._content = None  # simulate a hand-wired system
        with pytest.raises(StoreError, match="content"):
            session.checkpoint(backend)
