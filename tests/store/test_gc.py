"""Snapshot garbage collection: refcounts and reachability guarantees.

The invariant under test: ``gc`` reclaims exactly the snapshots no retained
checkpoint (resolved through its delta chain) and no domain head references —
and provably never one that *is* referenced, however the reference arrives.
"""

import pytest

from repro.core.config import ProtocolConfig
from repro.core.session import SystemBuilder
from repro.fuzzy.vocabularies import medical_background_knowledge
from repro.network.overlay import Overlay
from repro.network.topology import TopologyConfig
from repro.saintetiq.hierarchy import SummaryHierarchy
from repro.store import (
    CHECKPOINT_KIND,
    DomainHeadArchive,
    InMemoryBackend,
    JsonDirectoryBackend,
    SnapshotStore,
    SqliteBackend,
    collect_garbage,
    snapshot_refcounts,
)
from repro.workloads.patients import MedicalWorkload, build_peer_databases


@pytest.fixture(params=["memory", "json", "sqlite"])
def backend(request, tmp_path):
    if request.param == "memory":
        yield InMemoryBackend()
    elif request.param == "json":
        yield JsonDirectoryBackend(tmp_path / "store")
    else:
        store = SqliteBackend(tmp_path / "store.sqlite")
        yield store
        store.close()


def _hierarchy(tag: str) -> SummaryHierarchy:
    background = medical_background_knowledge()
    hierarchy = SummaryHierarchy(background, attributes=["age", "bmi"], owner=tag)
    hierarchy.add_records(
        [{"age": 30 + len(tag), "bmi": 22.0, "sex": "F", "disease": "asthma"}]
    )
    return hierarchy


def _real_session(seed=3):
    overlay = Overlay.generate(TopologyConfig(peer_count=12, seed=seed))
    background = medical_background_knowledge()
    workload = MedicalWorkload(records_per_peer=5, matching_fraction=0.25, seed=seed)
    databases = build_peer_databases(overlay.peer_ids, workload)
    session = (
        SystemBuilder()
        .topology(overlay)
        .background(background)
        .protocol(ProtocolConfig(superpeer_fraction=1 / 6, construction_ttl=3))
        .real_content(databases)
        .seed(seed)
        .build()
    )
    return background, session


class TestRefcounts:
    def test_orphan_snapshot_counts_zero(self, backend):
        snapshots = SnapshotStore(backend)
        digest = snapshots.put_hierarchy(_hierarchy("orphan"))
        assert snapshot_refcounts(backend) == {digest: 0}

    def test_checkpoint_references_count(self, backend):
        _background, session = _real_session()
        session.checkpoint(backend, name="first")
        session.checkpoint(backend, name="second")
        counts = snapshot_refcounts(backend)
        assert counts
        # Two checkpoints of the same state: every snapshot referenced twice.
        assert all(count == 2 for count in counts.values())

    def test_head_references_count(self, backend):
        snapshots = SnapshotStore(backend)
        archive = DomainHeadArchive(backend)
        gs = snapshots.put_hierarchy(_hierarchy("global"))
        local = snapshots.put_hierarchy(_hierarchy("local"))
        archive.record_head("p1", gs, [["p2", local]], time=0.0)
        assert snapshot_refcounts(backend) == {gs: 1, local: 1}


class TestCollection:
    def test_reclaims_unreachable_only(self, backend):
        _background, session = _real_session()
        session.checkpoint(backend, name="keep")
        snapshots = SnapshotStore(backend)
        orphan = snapshots.put_hierarchy(_hierarchy("orphan"))
        live_before = {d for d, c in snapshot_refcounts(backend).items() if c > 0}

        report = collect_garbage(backend)
        assert report.deleted == [orphan]
        assert report.scanned == len(live_before) + 1
        assert report.live == len(live_before)
        assert report.reclaimed_bytes > 0
        assert not snapshots.contains(orphan)
        for digest in live_before:
            assert snapshots.contains(digest)
        # The retained checkpoint still restores.
        background = medical_background_knowledge()
        SystemBuilder.from_checkpoint(backend, name="keep", background=background)

    def test_never_collects_through_a_delta_chain(self, backend):
        """Snapshots only the *base* references stay live while a delta is retained."""
        background, session = _real_session()
        session.checkpoint(backend, name="base")
        session.checkpoint(backend, name="tip", base="base")
        # Each snapshot is counted once per referencing checkpoint: once for
        # the base document and once for the resolved tip.
        counts = snapshot_refcounts(backend)
        assert all(count == 2 for count in counts.values())
        report = collect_garbage(backend)
        assert report.deleted == []
        restored = SystemBuilder.from_checkpoint(
            backend, name="tip", background=background
        )
        assert restored.now == session.now

    def test_deleting_tip_then_gc_reclaims_its_extra_snapshots(self, backend):
        background, session = _real_session()
        session.checkpoint(backend, name="keep")
        snapshots_before = set(SnapshotStore(backend).hashes())
        # Drive the session into a different summary state and checkpoint it.
        session.system.services[session.overlay.peer_ids[0]].summary.add_records(
            [{"age": 61, "bmi": 31.0, "sex": "M", "disease": "diabetes"}]
        )
        session.checkpoint(backend, name="drop")
        extra = set(SnapshotStore(backend).hashes()) - snapshots_before
        assert extra  # the modified summary produced at least one new snapshot

        backend.delete(CHECKPOINT_KIND, "drop")
        report = collect_garbage(backend)
        assert set(report.deleted) == extra
        # Everything the kept checkpoint needs survived.
        SystemBuilder.from_checkpoint(backend, name="keep", background=background)

    def test_dry_run_deletes_nothing(self, backend):
        snapshots = SnapshotStore(backend)
        orphan = snapshots.put_hierarchy(_hierarchy("orphan"))
        report = collect_garbage(backend, dry_run=True)
        assert report.dry_run
        assert report.deleted == [orphan]
        assert snapshots.contains(orphan)

    def test_backend_gc_convenience(self, backend):
        snapshots = SnapshotStore(backend)
        orphan = snapshots.put_hierarchy(_hierarchy("orphan"))
        report = backend.gc()
        assert report.deleted == [orphan]
        assert report.location == backend.location()

    def test_head_pins_cold_start_material(self, backend):
        snapshots = SnapshotStore(backend)
        archive = DomainHeadArchive(backend)
        gs = snapshots.put_hierarchy(_hierarchy("global"))
        local = snapshots.put_hierarchy(_hierarchy("local"))
        orphan = snapshots.put_hierarchy(_hierarchy("orphan"))
        archive.record_head("p1", gs, [["p2", local]], time=42.0)
        report = collect_garbage(backend)
        assert report.deleted == [orphan]
        assert snapshots.contains(gs) and snapshots.contains(local)

    def test_empty_store_collection_is_clean(self, backend):
        report = collect_garbage(backend)
        assert report.scanned == 0
        assert report.deleted == [] and report.live == 0
