"""Backend edge-case parity: the three implementations fail identically.

A parametrized matrix asserting *identical behaviour — exception types
included* — across in-memory / JSON-directory / SQLite for the awkward
corners: deleting a missing key, reading after a delete, overwriting,
operating after ``close()``, reopening a durable store, and GC refcount
accounting.
"""

import pytest

from repro.exceptions import StoreError
from repro.fuzzy.vocabularies import medical_background_knowledge
from repro.saintetiq.hierarchy import SummaryHierarchy
from repro.store import (
    DomainHeadArchive,
    InMemoryBackend,
    JsonDirectoryBackend,
    SnapshotStore,
    SqliteBackend,
    snapshot_refcounts,
)

BACKENDS = ["memory", "json", "sqlite"]


class _Harness:
    """One backend plus how to (re)open it; memory cannot reopen."""

    def __init__(self, param, tmp_path):
        self._param = param
        self._tmp_path = tmp_path
        self.backend = self._open()
        self.durable = param != "memory"

    def _open(self):
        if self._param == "memory":
            return InMemoryBackend()
        if self._param == "json":
            return JsonDirectoryBackend(self._tmp_path / "store")
        return SqliteBackend(self._tmp_path / "store.sqlite")

    def reopen(self):
        self.backend.close()
        self.backend = self._open()
        return self.backend


@pytest.fixture(params=BACKENDS)
def harness(request, tmp_path):
    h = _Harness(request.param, tmp_path)
    yield h
    try:
        h.backend.close()
    except StoreError:  # pragma: no cover - already closed by the test
        pass


class TestEdgeCaseParity:
    def test_delete_missing_key(self, harness):
        with pytest.raises(StoreError, match="no stored object"):
            harness.backend.delete("checkpoint", "never-stored")

    def test_get_after_delete(self, harness):
        backend = harness.backend
        backend.put("checkpoint", "k", {"v": 1})
        backend.delete("checkpoint", "k")
        assert not backend.contains("checkpoint", "k")
        with pytest.raises(StoreError, match="no stored object"):
            backend.get("checkpoint", "k")
        with pytest.raises(StoreError, match="no stored object"):
            backend.size_bytes("checkpoint", "k")
        assert backend.keys("checkpoint") == []

    def test_reput_overwrites(self, harness):
        backend = harness.backend
        backend.put("checkpoint", "k", {"v": 1, "extra": [1, 2, 3]})
        backend.put("checkpoint", "k", {"v": 2})
        assert backend.get("checkpoint", "k") == {"v": 2}
        assert backend.keys("checkpoint") == ["k"]
        assert backend.size_bytes("checkpoint", "k") == len(b'{"v":2}')

    @pytest.mark.parametrize(
        "operation",
        [
            lambda b: b.put("checkpoint", "k", {}),
            lambda b: b.get("checkpoint", "k"),
            lambda b: b.contains("checkpoint", "k"),
            lambda b: b.keys("checkpoint"),
            lambda b: b.kinds(),
            lambda b: b.delete("checkpoint", "k"),
            lambda b: b.size_bytes("checkpoint", "k"),
        ],
        ids=["put", "get", "contains", "keys", "kinds", "delete", "size_bytes"],
    )
    def test_every_operation_after_close_raises_store_error(self, harness, operation):
        harness.backend.put("checkpoint", "k", {"v": 1})
        harness.backend.close()
        assert harness.backend.closed
        with pytest.raises(StoreError, match="closed"):
            operation(harness.backend)

    def test_close_is_idempotent(self, harness):
        harness.backend.close()
        harness.backend.close()  # no error, still closed
        assert harness.backend.closed

    def test_context_manager_closes(self, harness):
        with harness.backend as backend:
            backend.put("checkpoint", "k", {"v": 1})
        assert harness.backend.closed
        with pytest.raises(StoreError, match="closed"):
            harness.backend.get("checkpoint", "k")

    def test_entering_a_closed_backend_raises(self, harness):
        harness.backend.close()
        with pytest.raises(StoreError, match="closed"):
            with harness.backend:
                pass  # pragma: no cover

    def test_reopen_after_close(self, harness):
        harness.backend.put("checkpoint", "k", {"v": 7})
        reopened = harness.reopen()
        if harness.durable:
            assert reopened.get("checkpoint", "k") == {"v": 7}
        else:
            # Memory stores do not survive reopening — but the reopened store
            # must behave like any other empty backend, not error differently.
            with pytest.raises(StoreError, match="no stored object"):
                reopened.get("checkpoint", "k")
        assert not reopened.closed

    def test_second_exclusive_open_raises_typed_error(self, harness, tmp_path):
        """A concurrent write open fails with StoreError, not sqlite3/OSError."""
        if not harness.durable:
            pytest.skip("memory backends have no shared path to contend on")
        with pytest.raises(StoreError, match="already open for write"):
            harness._open()
        # The losing open must not have broken the holder.
        harness.backend.put("checkpoint", "k", {"v": 1})
        assert harness.backend.get("checkpoint", "k") == {"v": 1}

    def test_exclusive_reopen_after_close_succeeds(self, harness):
        if not harness.durable:
            pytest.skip("memory backends have no shared path to contend on")
        harness.backend.put("checkpoint", "k", {"v": 1})
        reopened = harness.reopen()  # closing released the write lock
        assert reopened.get("checkpoint", "k") == {"v": 1}

    def test_non_exclusive_open_coexists_with_writer(self, harness):
        if not harness.durable:
            pytest.skip("memory backends have no shared path to contend on")
        harness.backend.put("checkpoint", "k", {"v": 1})
        if harness._param == "json":
            reader = JsonDirectoryBackend(harness._tmp_path / "store", exclusive=False)
        else:
            reader = SqliteBackend(harness._tmp_path / "store.sqlite", exclusive=False)
        try:
            assert reader.get("checkpoint", "k") == {"v": 1}
        finally:
            reader.close()
        # Closing the non-exclusive reader must not release the writer's lock.
        with pytest.raises(StoreError, match="already open for write"):
            harness._open()

    def test_stale_lock_of_dead_process_is_stolen(self, harness):
        if not harness.durable:
            pytest.skip("memory backends have no shared path to contend on")
        harness.backend.close()
        if harness._param == "json":
            lock = harness._tmp_path / "store" / ".write.lock"
        else:
            lock = harness._tmp_path / "store.sqlite.lock"
        # A writer that crashed without close() leaves its lock behind; a pid
        # that cannot exist marks it dead, so the next open steals it.
        lock.write_text("999999999")
        harness.backend = harness._open()
        harness.backend.put("checkpoint", "k", {"v": 1})
        assert harness.backend.get("checkpoint", "k") == {"v": 1}

    def test_gc_refcount_accounting(self, harness):
        """Identical refcounts and GC outcome on every backend."""
        backend = harness.backend
        background = medical_background_knowledge()

        def hierarchy(tag):
            h = SummaryHierarchy(background, attributes=["age", "bmi"], owner=tag)
            h.add_records([{"age": 40, "bmi": 25.0, "sex": "F", "disease": "asthma"}])
            return h

        snapshots = SnapshotStore(backend)
        shared = snapshots.put_hierarchy(hierarchy("shared"))
        orphan = snapshots.put_hierarchy(hierarchy("orphan"))
        archive = DomainHeadArchive(backend)
        archive.record_head("p1", shared, [["p2", shared]], time=1.0)
        archive.record_head("p9", shared, [], time=2.0)

        assert snapshot_refcounts(backend) == {shared: 3, orphan: 0}
        report = backend.gc()
        assert report.deleted == [orphan]
        assert report.live == 1
        assert snapshot_refcounts(backend) == {shared: 3}
