"""The write-lock sidecar: pid recycling, torn stamps, and steal races.

A pid in a lock file is not an identity: pids recycle, so a lock left by a
crashed writer can point at an unrelated live process.  The stamp therefore
records ``{"pid": ..., "token": <process start time>}`` and a holder is
"live" only when both match a running process.  These tests pin down every
staleness rule and the guarantee that two contenders racing for a stale lock
resolve to exactly one winner and one *typed* loser.
"""

import json
import os
import threading

import pytest

from repro.exceptions import StoreError
from repro.store import SqliteBackend
from repro.store.backend import _pid_start_token


@pytest.fixture
def store_path(tmp_path):
    return tmp_path / "store.sqlite"


def lock_path(store_path):
    return store_path.with_name(store_path.name + ".lock")


class TestStampFormat:
    def test_lock_stamp_records_pid_and_start_token(self, store_path):
        backend = SqliteBackend(store_path)
        try:
            stamp = json.loads(lock_path(store_path).read_text())
            assert stamp["pid"] == os.getpid()
            assert stamp["token"] == _pid_start_token(os.getpid())
        finally:
            backend.close()
        assert not lock_path(store_path).exists()

    def test_start_token_is_stable_and_distinguishes_processes(self):
        token = _pid_start_token(os.getpid())
        assert token is not None
        assert token == _pid_start_token(os.getpid())
        # pid 1 (init) started before this test process did.
        other = _pid_start_token(1)
        if other is not None:  # /proc may be restricted in odd sandboxes
            assert other != token

    def test_unknown_pid_has_no_token(self):
        assert _pid_start_token(999_999_999) is None


class TestStaleness:
    def _steal_succeeds(self, store_path):
        backend = SqliteBackend(store_path)
        backend.put("checkpoint", "k", {"v": 1})
        backend.close()

    def test_recycled_pid_is_stolen(self, store_path):
        # A live pid (our own) with a *mismatched* start token is a previous
        # incarnation: the holder crashed and the pid was reused.
        lock_path(store_path).write_text(
            json.dumps({"pid": os.getpid(), "token": "1"})
        )
        self._steal_succeeds(store_path)

    def test_live_holder_with_matching_token_is_respected(self, store_path):
        lock_path(store_path).write_text(
            json.dumps({"pid": os.getpid(), "token": _pid_start_token(os.getpid())})
        )
        with pytest.raises(StoreError, match="already open for write"):
            SqliteBackend(store_path)

    def test_legacy_bare_pid_stamp_of_live_process_is_respected(self, store_path):
        # Pre-token lockers wrote just the pid.  With no recorded token we
        # cannot tell incarnations apart, which must read as "held".
        lock_path(store_path).write_text(str(os.getpid()))
        with pytest.raises(StoreError, match="already open for write"):
            SqliteBackend(store_path)

    def test_legacy_bare_pid_stamp_of_dead_process_is_stolen(self, store_path):
        lock_path(store_path).write_text("999999999")
        self._steal_succeeds(store_path)

    def test_empty_stamp_is_stolen(self, store_path):
        # A writer that crashed between creating the file and stamping it.
        lock_path(store_path).write_text("")
        self._steal_succeeds(store_path)

    def test_torn_json_stamp_is_stolen(self, store_path):
        lock_path(store_path).write_text('{"pid": 12')
        self._steal_succeeds(store_path)

    def test_stamp_without_pid_is_stolen(self, store_path):
        lock_path(store_path).write_text(json.dumps({"token": "42"}))
        self._steal_succeeds(store_path)


class TestStealRace:
    def test_two_contenders_one_winner_one_typed_loser(self, store_path):
        """Racing a stale lock: exactly one open succeeds, the loser gets
        StoreError — never two writers, never an untyped crash."""
        for _ in range(5):  # the interleaving is scheduler-dependent; repeat
            lock_path(store_path).write_text("999999999")  # dead holder
            barrier = threading.Barrier(2)
            results = [None, None]

            def contend(slot):
                barrier.wait()
                try:
                    # SQLite handles are thread-affine: the winner must use
                    # and close its backend on this same thread.
                    backend = SqliteBackend(store_path)
                except StoreError as exc:
                    results[slot] = exc
                    return
                try:
                    backend.put("checkpoint", "k", {"v": slot})
                    assert backend.get("checkpoint", "k") == {"v": slot}
                    stamp = json.loads(lock_path(store_path).read_text())
                    assert stamp["pid"] == os.getpid()
                    results[slot] = "winner"
                finally:
                    backend.close()

            threads = [
                threading.Thread(target=contend, args=(slot,)) for slot in (0, 1)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            winners = [r for r in results if r == "winner"]
            losers = [r for r in results if isinstance(r, StoreError)]
            assert len(winners) == 1, f"expected one winner, got {results!r}"
            assert len(losers) == 1
            assert "already open for write" in str(losers[0])
            assert not lock_path(store_path).exists()
