"""Delta-chain compaction: fold full→delta→…→delta into a fresh full.

The acceptance bar: compaction never changes what a checkpoint restores to —
the compacted document is byte-identical to the resolved chain payload — and
it frees the chain's earlier links for deletion/GC.
"""

from __future__ import annotations

import pytest

from repro.core.session import SystemBuilder
from repro.store import (
    CHECKPOINT_KIND,
    InMemoryBackend,
    JsonDirectoryBackend,
    SessionCache,
    SqliteBackend,
    checkpoint_base_chain,
    compact_checkpoint,
    compact_checkpoints,
)
from repro.store.checkpoint import resolve_checkpoint_payload
from repro.workloads.registry import default_registry


@pytest.fixture(params=["memory", "json", "sqlite"])
def backend(request, tmp_path):
    if request.param == "memory":
        yield InMemoryBackend()
    elif request.param == "json":
        yield JsonDirectoryBackend(tmp_path / "store")
    else:
        store = SqliteBackend(tmp_path / "store.sqlite")
        yield store
        store.close()


def _chained_session(backend, links=3):
    """A session checkpointed as full → delta → … → delta while simulating."""
    scenario = default_registry().scenario(
        "smoke", duration_seconds=float(links + 1) * 600.0
    )
    session = scenario.apply_dynamics(scenario.builder()).build()
    session.checkpoint(backend, name="link0")
    for link in range(1, links + 1):
        session.run_until(link * 600.0)
        session.checkpoint(backend, name=f"link{link}", base=f"link{link - 1}")
    return session


class TestCompactCheckpoint:
    def test_compacting_a_full_checkpoint_is_a_noop(self, backend):
        scenario = default_registry().scenario("smoke")
        session = scenario.apply_dynamics(scenario.builder()).build()
        session.checkpoint(backend, name="full")
        before = backend.get(CHECKPOINT_KIND, "full")
        assert compact_checkpoint(backend, "full") is False
        assert backend.get(CHECKPOINT_KIND, "full") == before

    def test_compacted_document_equals_resolved_chain(self, backend):
        _chained_session(backend, links=3)
        resolved = resolve_checkpoint_payload(backend, "link3")
        assert compact_checkpoint(backend, "link3") is True
        stored = backend.get(CHECKPOINT_KIND, "link3")
        assert "base" not in stored
        assert stored == resolved
        assert checkpoint_base_chain(backend, "link3") == ["link3"]

    def test_restore_unchanged_and_chain_links_freed(self, backend):
        session = _chained_session(backend, links=3)
        reference = SystemBuilder.from_checkpoint(backend, name="link3")
        compact_checkpoint(backend, "link3")
        # The earlier links are no longer needed to restore the tip.
        for link in ("link0", "link1", "link2"):
            backend.delete(CHECKPOINT_KIND, link)
        restored = SystemBuilder.from_checkpoint(backend, name="link3")
        assert restored.now == session.now == reference.now
        a = restored.query(required_results=2)
        b = reference.query(required_results=2)
        assert a.routing == b.routing
        assert a.staleness == b.staleness

    def test_compact_all_folds_every_delta(self, backend):
        _chained_session(backend, links=2)
        compacted = compact_checkpoints(backend)
        assert sorted(compacted) == ["link1", "link2"]
        for name in ("link0", "link1", "link2"):
            assert "base" not in backend.get(CHECKPOINT_KIND, name)
        # Everything is already full: a second pass is a no-op.
        assert compact_checkpoints(backend) == []


class TestSessionCacheCompaction:
    def test_manual_compact(self):
        backend = InMemoryBackend()
        _chained_session(backend, links=2)
        with SessionCache(backend) as cache:
            assert sorted(cache.compact()) == ["link1", "link2"]
        assert "base" not in backend.get(CHECKPOINT_KIND, "link2")

    def test_compaction_cadence_on_misses(self):
        backend = InMemoryBackend()
        _chained_session(backend, links=2)  # leaves a delta chain in the store
        scenario = default_registry().scenario("smoke")
        with SessionCache(backend, compact_every=1) as cache:
            cache.get_or_build(
                {"who": "cadence-test"},
                lambda: scenario.apply_dynamics(scenario.builder()).build(),
            )
        # The miss triggered a compaction sweep over the shared store.
        assert "base" not in backend.get(CHECKPOINT_KIND, "link2")

    def test_invalid_cadence_rejected(self):
        with pytest.raises(ValueError):
            SessionCache(InMemoryBackend(), compact_every=0)
