"""Content-addressed snapshot store tests."""

import pytest

from repro.database.generator import PatientGenerator
from repro.exceptions import StoreError
from repro.saintetiq.hierarchy import SummaryHierarchy
from repro.saintetiq.serialization import (
    encoded_size_bytes,
    hierarchy_content_hash,
    hierarchy_to_dict,
)
from repro.store import InMemoryBackend, SnapshotStore
from repro.store.snapshots import SNAPSHOT_KIND


@pytest.fixture
def store():
    return SnapshotStore(InMemoryBackend())


def _hierarchy(background, seed=1, count=20, owner="peer-a"):
    hierarchy = SummaryHierarchy(background, attributes=["age", "bmi"], owner=owner)
    records = [r.as_dict() for r in PatientGenerator(seed=seed).relation(count)]
    hierarchy.add_records(records)
    return hierarchy


class TestContentAddressing:
    def test_put_returns_content_hash(self, store, numeric_background):
        hierarchy = _hierarchy(numeric_background)
        digest = store.put_hierarchy(hierarchy)
        assert digest == hierarchy_content_hash(hierarchy)
        assert store.contains(digest)

    def test_identical_hierarchies_are_deduplicated(self, store, numeric_background):
        first = _hierarchy(numeric_background, seed=4)
        second = _hierarchy(numeric_background, seed=4)
        assert first is not second
        assert store.put_hierarchy(first) == store.put_hierarchy(second)
        assert len(store) == 1

    def test_distinct_hierarchies_get_distinct_addresses(
        self, store, numeric_background
    ):
        store.put_hierarchy(_hierarchy(numeric_background, seed=4))
        store.put_hierarchy(_hierarchy(numeric_background, seed=5))
        assert len(store) == 2

    def test_roundtrip_is_byte_identical(self, store, numeric_background):
        hierarchy = _hierarchy(numeric_background)
        digest = store.put_hierarchy(hierarchy)
        restored = store.get_hierarchy(digest, numeric_background)
        assert hierarchy_content_hash(restored) == digest
        assert hierarchy_to_dict(restored) == hierarchy_to_dict(hierarchy)

    def test_stored_size_equals_encoded_size_bytes(self, store, numeric_background):
        """Fig-6/Table-2 storage figures and stored snapshot bytes agree."""
        hierarchy = _hierarchy(numeric_background)
        digest = store.put_hierarchy(hierarchy)
        assert store.size_bytes(digest) == encoded_size_bytes(hierarchy)
        assert store.size_bytes() == encoded_size_bytes(hierarchy)


class TestIntegrity:
    def test_verify_accepts_intact_snapshots(self, store, numeric_background):
        digest = store.put_hierarchy(_hierarchy(numeric_background))
        store.verify(digest)

    def test_verify_detects_tampering(self, store, numeric_background):
        digest = store.put_hierarchy(_hierarchy(numeric_background))
        payload = store.backend.get(SNAPSHOT_KIND, digest)
        payload["records_processed"] = 999
        store.backend.put(SNAPSHOT_KIND, digest, payload)
        with pytest.raises(StoreError, match="corrupt"):
            store.verify(digest)

    def test_missing_snapshot_raises(self, store, numeric_background):
        with pytest.raises(StoreError):
            store.get_hierarchy("0" * 64, numeric_background)
