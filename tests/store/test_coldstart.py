"""Store-backed domain cold start.

A restarted summary peer installs its global summary from the archived head
(snapshot-hash lookup) and only pulls the partners that changed since —
instead of re-reconciling every partner from scratch.  The bar: the installed
global summary is byte-identical to what a full reconciliation would build,
at a fraction of the ring messages.
"""

import pytest

from repro.core.config import ProtocolConfig
from repro.core.session import SystemBuilder
from repro.exceptions import ProtocolError, StoreError
from repro.fuzzy.vocabularies import medical_background_knowledge
from repro.network.messages import MessageType
from repro.network.overlay import Overlay
from repro.network.topology import TopologyConfig
from repro.saintetiq.serialization import hierarchy_content_hash
from repro.store import (
    DomainHeadArchive,
    InMemoryBackend,
    JsonDirectoryBackend,
    SnapshotStore,
    SqliteBackend,
)
from repro.workloads.patients import MedicalWorkload, build_peer_databases


@pytest.fixture(params=["memory", "json", "sqlite"])
def backend(request, tmp_path):
    if request.param == "memory":
        yield InMemoryBackend()
    elif request.param == "json":
        yield JsonDirectoryBackend(tmp_path / "store")
    else:
        store = SqliteBackend(tmp_path / "store.sqlite")
        yield store
        store.close()


def _real_session(seed=3, peer_count=16):
    overlay = Overlay.generate(TopologyConfig(peer_count=peer_count, seed=seed))
    background = medical_background_knowledge()
    workload = MedicalWorkload(records_per_peer=6, matching_fraction=0.25, seed=seed)
    databases = build_peer_databases(overlay.peer_ids, workload)
    session = (
        SystemBuilder()
        .topology(overlay)
        .background(background)
        .protocol(ProtocolConfig(superpeer_fraction=1 / 8, construction_ttl=3))
        .real_content(databases)
        .seed(seed)
        .build()
    )
    return background, session


def _largest_domain(session):
    return max(session.domains.values(), key=lambda d: len(d.partner_ids))


def _reconcile_all(session):
    """Materialise every domain's global summary (records heads when attached)."""
    system = session.system
    for sp_id, domain in system.domains.items():
        system.maintenance.reconcile(
            domain, local_summaries=system.local_summaries(), now=system.simulator.now
        )


def _modify_partner(session, peer_id):
    """Change one partner's data, rebuild its local summary, push staleness."""
    system = session.system
    database = system.databases[peer_id]
    relation = database.relation(database.relation_names[0])
    relation.insert(
        {"id": "t-99000", "age": 64, "bmi": 33.5, "sex": "M", "disease": "diabetes"}
    )
    service = system.services[peer_id]
    service.rebuild_from_database()
    sp_id = system.assignment[peer_id]
    system.maintenance.push_stale(system.domains[sp_id], peer_id, now=system.simulator.now)
    return sp_id


class TestColdStart:
    def test_cold_start_matches_full_reconciliation(self, backend):
        """Same global summary as a full re-reconciliation, fewer messages."""
        # Two identical sessions: one cold-starts, the other fully reconciles.
        _bg, cold = _real_session()
        _bg, full = _real_session()
        cold.attach_store(backend)
        _reconcile_all(cold)
        _reconcile_all(full)

        domain_cold = _largest_domain(cold)
        sp_id = domain_cold.summary_peer_id
        changed = domain_cold.partner_ids[0]
        assert _modify_partner(cold, changed) == sp_id
        assert _modify_partner(full, changed) == sp_id

        messages_before = cold.system.counter.count(MessageType.RECONCILIATION)
        record = cold.cold_start_domain(sp_id)
        cold_messages = (
            cold.system.counter.count(MessageType.RECONCILIATION) - messages_before
        )

        domain_full = full.system.domains[sp_id]
        full_record = full.system.maintenance.reconcile(
            domain_full,
            local_summaries=full.system.local_summaries(),
            now=full.system.simulator.now,
        )

        assert hierarchy_content_hash(domain_cold.global_summary) == (
            hierarchy_content_hash(domain_full.global_summary)
        )
        assert record.changed_partners == [changed]
        assert not record.fallback
        assert record.messages == cold_messages == 2  # one changed partner + SP
        assert full_record.messages == record.full_messages
        assert record.messages < record.full_messages
        assert record.messages_saved == record.full_messages - record.messages
        assert cold.system.maintenance.stats.cold_starts == 1

    def test_unchanged_domain_fast_path_installs_head_by_hash(
        self, backend, monkeypatch
    ):
        _bg, session = _real_session()
        session.attach_store(backend)
        _reconcile_all(session)
        domain = _largest_domain(session)
        sp_id = domain.summary_peer_id
        head = DomainHeadArchive(backend).head(sp_id)
        before = hierarchy_content_hash(domain.global_summary)

        # The fast path must not merge anything — it is a pure hash lookup.
        import repro.core.maintenance as maintenance_module

        def no_merge(*_args, **_kwargs):
            pytest.fail("the unchanged-domain fast path must not merge")

        monkeypatch.setattr(maintenance_module, "merge_hierarchies", no_merge)
        messages_before = session.system.counter.count(MessageType.RECONCILIATION)
        record = session.cold_start_domain(sp_id)
        assert record.restored_snapshot == head["global_summary"]
        assert record.changed_partners == []
        assert record.messages == 0  # pure store lookup, no ring at all
        assert (
            session.system.counter.count(MessageType.RECONCILIATION) == messages_before
        )
        assert hierarchy_content_hash(domain.global_summary) == before

    def test_cold_start_after_restore_from_checkpoint(self, backend):
        """The restart story end-to-end: checkpoint, restore, re-attach, cold-start."""
        background, session = _real_session()
        session.attach_store(backend)
        _reconcile_all(session)
        domain = _largest_domain(session)
        sp_id = domain.summary_peer_id
        expected = hierarchy_content_hash(domain.global_summary)
        session.checkpoint(backend, name="restart")

        restored = SystemBuilder.from_checkpoint(
            backend, name="restart", background=background
        )
        restored.attach_store(backend)
        record = restored.cold_start_domain(sp_id)
        assert not record.fallback
        assert record.messages == 0
        assert hierarchy_content_hash(
            restored.system.domains[sp_id].global_summary
        ) == expected

    def test_head_recorded_per_reconciliation(self, backend):
        _bg, session = _real_session()
        session.attach_store(backend)
        _reconcile_all(session)
        archive = DomainHeadArchive(backend)
        assert sorted(session.domains) == archive.summary_peer_ids()
        snapshots = SnapshotStore(backend)
        for sp_id, domain in session.domains.items():
            head = archive.head(sp_id)
            assert head["global_summary"] == hierarchy_content_hash(
                domain.global_summary
            )
            for _peer_id, digest in head["partners"]:
                assert snapshots.contains(digest)

    def test_ring_hop_accounting_switch_is_honoured(self, backend):
        """count_reconciliation_ring_hops=False: one message, like reconcile()."""
        overlay = Overlay.generate(TopologyConfig(peer_count=16, seed=3))
        background = medical_background_knowledge()
        workload = MedicalWorkload(records_per_peer=6, matching_fraction=0.25, seed=3)
        databases = build_peer_databases(overlay.peer_ids, workload)
        session = (
            SystemBuilder()
            .topology(overlay)
            .background(background)
            .protocol(
                ProtocolConfig(
                    superpeer_fraction=1 / 8,
                    construction_ttl=3,
                    count_reconciliation_ring_hops=False,
                )
            )
            .real_content(databases)
            .seed(3)
            .build()
        )
        session.attach_store(backend)
        _reconcile_all(session)
        domain = _largest_domain(session)
        sp_id = domain.summary_peer_id
        _modify_partner(session, domain.partner_ids[0])

        record = session.cold_start_domain(sp_id)
        # A full reconciliation under this ablation charges exactly 1 message;
        # the cold start must never charge more than what it replaces.
        assert record.full_messages == 1
        assert record.messages == 1
        assert record.messages_saved == 0

    def test_cold_start_without_head_falls_back_to_full(self, backend):
        _bg, session = _real_session()
        _reconcile_all(session)  # store not yet attached: no heads recorded
        session.attach_store(backend)
        domain = _largest_domain(session)
        record = session.cold_start_domain(domain.summary_peer_id)
        assert record.fallback
        assert record.restored_snapshot is None
        assert record.messages == record.full_messages
        assert session.system.maintenance.stats.reconciliations >= 1

    def test_cold_start_without_store_raises(self):
        _bg, session = _real_session()
        _reconcile_all(session)
        domain = _largest_domain(session)
        with pytest.raises(StoreError, match="attach_store"):
            session.system.maintenance.cold_start(domain)

    def test_cold_start_of_unknown_domain_raises(self, backend):
        _bg, session = _real_session()
        session.attach_store(backend)
        with pytest.raises(ProtocolError, match="not a live summary peer"):
            session.cold_start_domain("p999")

    def test_detach_store_allows_closing_the_backend(self, tmp_path):
        store = SqliteBackend(tmp_path / "detach.sqlite")
        _bg, session = _real_session()
        session.attach_store(store)
        _reconcile_all(session)
        assert session.system.maintenance.store_attached
        session.detach_store()
        store.close()
        # Reconciliations keep working — they just stop archiving heads.
        assert not session.system.maintenance.store_attached
        _reconcile_all(session)

    def test_attach_store_never_perturbs_traffic_or_rng(self, backend):
        """Byte-identity guard: attaching a store must not change a run."""
        _bg, plain = _real_session()
        _bg, attached = _real_session()
        attached.attach_store(backend)
        _reconcile_all(plain)
        _reconcile_all(attached)
        from repro.workloads.queries import paper_example_query

        query = paper_example_query()
        plain_answers = [plain.query(query=query) for _ in range(3)]
        attached_answers = [attached.query(query=query) for _ in range(3)]
        assert [a.routing for a in attached_answers] == [
            a.routing for a in plain_answers
        ]
        assert attached.system.counter.by_type() == plain.system.counter.by_type()
