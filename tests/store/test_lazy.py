"""Lazy hierarchy loading: first-touch fetches, LRU bounds, dedup sharing."""

import pytest

from repro.database.generator import PatientGenerator
from repro.saintetiq.hierarchy import SummaryHierarchy
from repro.store import InMemoryBackend, SnapshotStore
from repro.store.lazy import HierarchySource


@pytest.fixture
def snapshots(numeric_background):
    """A snapshot store holding several distinct hierarchies."""
    store = SnapshotStore(InMemoryBackend())
    digests = []
    for seed in range(5):
        generator = PatientGenerator(seed=seed)
        records = [r.as_dict() for r in generator.relation(4 + seed)]
        hierarchy = SummaryHierarchy(
            numeric_background, attributes=["age", "bmi"], owner=f"peer-{seed}"
        )
        hierarchy.add_records(records)
        digests.append(store.put_hierarchy(hierarchy))
    assert len(set(digests)) == len(digests), "fixtures must hash distinctly"
    return store, digests


def test_first_touch_fetches_then_hits(snapshots, numeric_background):
    store, digests = snapshots
    source = HierarchySource(store, numeric_background)
    assert (source.fetches, source.hits, source.cached) == (0, 0, 0)

    first = source.get(digests[0])
    assert (source.fetches, source.hits, source.cached) == (1, 0, 1)

    again = source.get(digests[0])
    assert again is first, "cached digest must return the shared object"
    assert (source.fetches, source.hits, source.cached) == (1, 1, 1)


def test_loader_defers_until_called(snapshots, numeric_background):
    store, digests = snapshots
    source = HierarchySource(store, numeric_background)
    loader = source.loader(digests[1])
    assert source.fetches == 0, "building a loader must not fetch"
    hierarchy = loader()
    assert source.fetches == 1
    assert loader() is hierarchy


def test_lru_evicts_oldest(snapshots, numeric_background):
    store, digests = snapshots
    source = HierarchySource(store, numeric_background, cache_size=2)

    source.get(digests[0])
    source.get(digests[1])
    source.get(digests[2])  # evicts digests[0]
    assert source.cached == 2

    source.get(digests[1])  # still cached: a hit
    assert source.hits == 1
    source.get(digests[0])  # evicted: fetched again
    assert source.fetches == 4


def test_lru_refreshes_on_hit(snapshots, numeric_background):
    store, digests = snapshots
    source = HierarchySource(store, numeric_background, cache_size=2)
    source.get(digests[0])
    source.get(digests[1])
    source.get(digests[0])  # refresh 0: 1 is now the LRU victim
    source.get(digests[2])  # evicts digests[1]
    assert source.fetches == 3
    source.get(digests[0])
    assert source.fetches == 3, "refreshed entry must have survived"


def test_cache_size_must_be_positive(snapshots, numeric_background):
    store, _digests = snapshots
    with pytest.raises(ValueError):
        HierarchySource(store, numeric_background, cache_size=0)


def test_stats_payload_shape(snapshots, numeric_background):
    store, digests = snapshots
    source = HierarchySource(store, numeric_background, cache_size=3)
    source.get(digests[0])
    source.get(digests[0])
    assert source.stats_payload() == {
        "fetches": 1,
        "hits": 1,
        "evictions": 0,
        "cached": 1,
        "cache_size": 3,
    }
