"""Backend contract tests: the three implementations behave identically."""

import os

import pytest

from repro.exceptions import StoreError
from repro.store import (
    InMemoryBackend,
    JsonDirectoryBackend,
    SqliteBackend,
    open_store,
)


@pytest.fixture(params=["memory", "json", "sqlite"])
def backend(request, tmp_path):
    if request.param == "memory":
        yield InMemoryBackend()
    elif request.param == "json":
        yield JsonDirectoryBackend(tmp_path / "store")
    else:
        store = SqliteBackend(tmp_path / "store.sqlite")
        yield store
        store.close()


class TestContract:
    def test_put_get_roundtrip(self, backend):
        payload = {"alpha": 0.3, "nested": {"values": [1, 2.5, "x", None, True]}}
        backend.put("checkpoint", "run-1", payload)
        assert backend.get("checkpoint", "run-1") == payload

    def test_overwrite_replaces(self, backend):
        backend.put("snapshot", "k", {"v": 1})
        backend.put("snapshot", "k", {"v": 2})
        assert backend.get("snapshot", "k") == {"v": 2}

    def test_contains_and_membership(self, backend):
        assert not backend.contains("snapshot", "missing")
        backend.put("snapshot", "present", {})
        assert backend.contains("snapshot", "present")
        assert ("snapshot", "present") in backend
        assert ("snapshot", "missing") not in backend

    def test_keys_and_kinds_sorted(self, backend):
        backend.put("b-kind", "z", {})
        backend.put("b-kind", "a", {})
        backend.put("a-kind", "m", {})
        assert backend.keys("b-kind") == ["a", "z"]
        assert backend.kinds() == ["a-kind", "b-kind"]
        assert backend.keys("no-such-kind") == []

    def test_get_missing_raises(self, backend):
        with pytest.raises(StoreError, match="no stored object"):
            backend.get("checkpoint", "nope")

    def test_delete(self, backend):
        backend.put("snapshot", "k", {"v": 1})
        backend.delete("snapshot", "k")
        assert not backend.contains("snapshot", "k")
        with pytest.raises(StoreError):
            backend.delete("snapshot", "k")

    def test_size_bytes_matches_canonical_encoding(self, backend):
        payload = {"b": 1, "a": [1, 2]}
        backend.put("snapshot", "k", payload)
        assert backend.size_bytes("snapshot", "k") == len(b'{"a":[1,2],"b":1}')

    def test_invalid_names_rejected(self, backend):
        for bad in ("", "a/b", "a b", "x" * 201):
            with pytest.raises(StoreError, match="invalid store"):
                backend.put("snapshot", bad, {})
            with pytest.raises(StoreError, match="invalid store"):
                backend.put(bad, "key", {})

    def test_non_json_payload_rejected(self, backend):
        with pytest.raises(StoreError, match="not JSON-compatible"):
            backend.put("snapshot", "k", {"bad": object()})


class TestAtomicJsonWrites:
    """A crash mid-`put` must never poison a previously stored document."""

    def test_torn_temp_write_leaves_previous_document_intact(
        self, tmp_path, monkeypatch
    ):
        store = JsonDirectoryBackend(tmp_path / "s")
        store.put("checkpoint", "k", {"v": 1})

        real_fdopen = os.fdopen

        class TornStream:
            """Writes half the payload, then dies — a simulated crash."""

            def __init__(self, stream):
                self._stream = stream

            def write(self, text):
                self._stream.write(text[: len(text) // 2])
                self._stream.flush()
                raise OSError("simulated crash mid-write")

            def __enter__(self):
                return self

            def __exit__(self, *exc_info):
                self._stream.close()

        monkeypatch.setattr(
            "repro.store.backend.os.fdopen",
            lambda fd, *args, **kwargs: TornStream(real_fdopen(fd, *args, **kwargs)),
        )
        with pytest.raises(OSError, match="simulated crash"):
            store.put("checkpoint", "k", {"v": 2, "payload": "x" * 4096})
        monkeypatch.undo()

        # The torn write is invisible: the old document reads back whole and
        # no half-written file pollutes the key listing.
        assert store.get("checkpoint", "k") == {"v": 1}
        assert store.keys("checkpoint") == ["k"]
        assert store.kinds() == ["checkpoint"]

    def test_crash_before_publish_leaves_previous_document_intact(
        self, tmp_path, monkeypatch
    ):
        store = JsonDirectoryBackend(tmp_path / "s")
        store.put("checkpoint", "k", {"v": 1})

        def refuse_replace(src, dst):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr("repro.store.backend.os.replace", refuse_replace)
        with pytest.raises(OSError, match="before rename"):
            store.put("checkpoint", "k", {"v": 2})
        monkeypatch.undo()

        assert store.get("checkpoint", "k") == {"v": 1}
        assert store.keys("checkpoint") == ["k"]
        # The failed attempt cleaned its temp file up.
        leftovers = list((tmp_path / "s" / "checkpoint").glob("*.tmp"))
        assert leftovers == []

    def test_orphaned_temp_file_is_ignored(self, tmp_path):
        store = JsonDirectoryBackend(tmp_path / "s")
        store.put("checkpoint", "k", {"v": 1})
        # A temp file left behind by a crash elsewhere must not surface as a
        # stored object or corrupt reads.
        (tmp_path / "s" / "checkpoint" / ".k.deadbeef.tmp").write_text("{tor")
        assert store.keys("checkpoint") == ["k"]
        assert store.get("checkpoint", "k") == {"v": 1}


class TestDurability:
    def test_json_store_survives_reopen(self, tmp_path):
        with JsonDirectoryBackend(tmp_path / "s") as store:
            store.put("checkpoint", "k", {"v": 7})
        with JsonDirectoryBackend(tmp_path / "s") as store:
            assert store.get("checkpoint", "k") == {"v": 7}

    def test_sqlite_store_survives_reopen(self, tmp_path):
        first = SqliteBackend(tmp_path / "s.sqlite")
        first.put("checkpoint", "k", {"v": 7})
        first.close()
        second = SqliteBackend(tmp_path / "s.sqlite")
        assert second.get("checkpoint", "k") == {"v": 7}
        second.close()

    def test_json_files_are_one_per_object(self, tmp_path):
        store = JsonDirectoryBackend(tmp_path / "s")
        store.put("snapshot", "abc", {"v": 1})
        assert (tmp_path / "s" / "snapshot" / "abc.json").is_file()


class TestOpenStore:
    def test_none_gives_memory(self):
        assert isinstance(open_store(None), InMemoryBackend)

    def test_sqlite_suffixes(self, tmp_path):
        for suffix in (".sqlite", ".sqlite3", ".db"):
            store = open_store(tmp_path / f"s{suffix}")
            assert isinstance(store, SqliteBackend)
            store.close()

    def test_directory_gives_json(self, tmp_path):
        assert isinstance(open_store(tmp_path / "plain"), JsonDirectoryBackend)

    def test_backend_passthrough(self):
        backend = InMemoryBackend()
        assert open_store(backend) is backend
