"""Backend contract tests: the three implementations behave identically."""

import pytest

from repro.exceptions import StoreError
from repro.store import (
    InMemoryBackend,
    JsonDirectoryBackend,
    SqliteBackend,
    open_store,
)


@pytest.fixture(params=["memory", "json", "sqlite"])
def backend(request, tmp_path):
    if request.param == "memory":
        yield InMemoryBackend()
    elif request.param == "json":
        yield JsonDirectoryBackend(tmp_path / "store")
    else:
        store = SqliteBackend(tmp_path / "store.sqlite")
        yield store
        store.close()


class TestContract:
    def test_put_get_roundtrip(self, backend):
        payload = {"alpha": 0.3, "nested": {"values": [1, 2.5, "x", None, True]}}
        backend.put("checkpoint", "run-1", payload)
        assert backend.get("checkpoint", "run-1") == payload

    def test_overwrite_replaces(self, backend):
        backend.put("snapshot", "k", {"v": 1})
        backend.put("snapshot", "k", {"v": 2})
        assert backend.get("snapshot", "k") == {"v": 2}

    def test_contains_and_membership(self, backend):
        assert not backend.contains("snapshot", "missing")
        backend.put("snapshot", "present", {})
        assert backend.contains("snapshot", "present")
        assert ("snapshot", "present") in backend
        assert ("snapshot", "missing") not in backend

    def test_keys_and_kinds_sorted(self, backend):
        backend.put("b-kind", "z", {})
        backend.put("b-kind", "a", {})
        backend.put("a-kind", "m", {})
        assert backend.keys("b-kind") == ["a", "z"]
        assert backend.kinds() == ["a-kind", "b-kind"]
        assert backend.keys("no-such-kind") == []

    def test_get_missing_raises(self, backend):
        with pytest.raises(StoreError, match="no stored object"):
            backend.get("checkpoint", "nope")

    def test_delete(self, backend):
        backend.put("snapshot", "k", {"v": 1})
        backend.delete("snapshot", "k")
        assert not backend.contains("snapshot", "k")
        with pytest.raises(StoreError):
            backend.delete("snapshot", "k")

    def test_size_bytes_matches_canonical_encoding(self, backend):
        payload = {"b": 1, "a": [1, 2]}
        backend.put("snapshot", "k", payload)
        assert backend.size_bytes("snapshot", "k") == len(b'{"a":[1,2],"b":1}')

    def test_invalid_names_rejected(self, backend):
        for bad in ("", "a/b", "a b", "x" * 201):
            with pytest.raises(StoreError, match="invalid store"):
                backend.put("snapshot", bad, {})
            with pytest.raises(StoreError, match="invalid store"):
                backend.put(bad, "key", {})

    def test_non_json_payload_rejected(self, backend):
        with pytest.raises(StoreError, match="not JSON-compatible"):
            backend.put("snapshot", "k", {"bad": object()})


class TestDurability:
    def test_json_store_survives_reopen(self, tmp_path):
        JsonDirectoryBackend(tmp_path / "s").put("checkpoint", "k", {"v": 7})
        assert JsonDirectoryBackend(tmp_path / "s").get("checkpoint", "k") == {"v": 7}

    def test_sqlite_store_survives_reopen(self, tmp_path):
        first = SqliteBackend(tmp_path / "s.sqlite")
        first.put("checkpoint", "k", {"v": 7})
        first.close()
        second = SqliteBackend(tmp_path / "s.sqlite")
        assert second.get("checkpoint", "k") == {"v": 7}
        second.close()

    def test_json_files_are_one_per_object(self, tmp_path):
        store = JsonDirectoryBackend(tmp_path / "s")
        store.put("snapshot", "abc", {"v": 1})
        assert (tmp_path / "s" / "snapshot" / "abc.json").is_file()


class TestOpenStore:
    def test_none_gives_memory(self):
        assert isinstance(open_store(None), InMemoryBackend)

    def test_sqlite_suffixes(self, tmp_path):
        for suffix in (".sqlite", ".sqlite3", ".db"):
            store = open_store(tmp_path / f"s{suffix}")
            assert isinstance(store, SqliteBackend)
            store.close()

    def test_directory_gives_json(self, tmp_path):
        assert isinstance(open_store(tmp_path / "plain"), JsonDirectoryBackend)

    def test_backend_passthrough(self):
        backend = InMemoryBackend()
        assert open_store(backend) is backend
