"""Unit tests for background knowledge."""

import pytest

from repro.exceptions import BackgroundKnowledgeError
from repro.fuzzy.background import BackgroundKnowledge, common_background_knowledge
from repro.fuzzy.linguistic import Descriptor, LinguisticVariable
from repro.fuzzy.membership import TrapezoidalMembership
from repro.fuzzy.vocabularies import medical_background_knowledge


class TestBackgroundKnowledge:
    def test_attributes_in_order(self, background):
        assert background.attributes == ["age", "bmi", "sex", "disease"]

    def test_variable_lookup(self, background):
        assert background.variable("age").attribute == "age"

    def test_unknown_attribute_raises(self, background):
        with pytest.raises(BackgroundKnowledgeError):
            background.variable("height")

    def test_contains_and_len(self, background):
        assert "bmi" in background
        assert "height" not in background
        assert len(background) == 4

    def test_descriptors_for_one_attribute(self, background):
        descriptors = background.descriptors("sex")
        assert Descriptor("sex", "female") in descriptors
        assert len(descriptors) == 2

    def test_all_descriptors(self, background):
        descriptors = background.descriptors()
        assert Descriptor("age", "young") in descriptors
        assert Descriptor("disease", "malaria") in descriptors

    def test_has_descriptor(self, background):
        assert background.has_descriptor(Descriptor("bmi", "underweight"))
        assert not background.has_descriptor(Descriptor("bmi", "gigantic"))
        assert not background.has_descriptor(Descriptor("height", "tall"))

    def test_grade(self, background):
        assert background.grade(Descriptor("bmi", "normal"), 20) == 1.0
        assert background.grade(Descriptor("bmi", "normal"), 10) == 0.0

    def test_fuzzify_value(self, background):
        graded = background.fuzzify_value("age", 20)
        assert graded[Descriptor("age", "young")] == pytest.approx(0.7)
        assert graded[Descriptor("age", "adult")] == pytest.approx(0.3)

    def test_fuzzify_record_ignores_uncovered_attributes(self, background):
        record = {"age": 20, "bmi": 20, "height": 180}
        mapped = background.fuzzify_record(record)
        assert set(mapped) == {"age", "bmi"}

    def test_fuzzify_record_skips_missing_attributes(self, background):
        mapped = background.fuzzify_record({"age": 20})
        assert set(mapped) == {"age"}

    def test_grid_size(self, numeric_background):
        # 4 age labels x 4 bmi labels
        assert numeric_background.grid_size() == 16

    def test_duplicate_variable_raises(self):
        variable = LinguisticVariable(
            "age", {"young": TrapezoidalMembership(0, 0, 18, 25)}
        )
        with pytest.raises(BackgroundKnowledgeError):
            BackgroundKnowledge([variable, variable])

    def test_empty_background_raises(self):
        with pytest.raises(BackgroundKnowledgeError):
            BackgroundKnowledge([])

    def test_from_categorical(self):
        bk = BackgroundKnowledge.from_categorical({"color": ["red", "blue"]})
        assert bk.labels("color") == ["red", "blue"]
        assert bk.grade(Descriptor("color", "red"), "red") == 1.0

    def test_merged_with_disjoint(self):
        first = BackgroundKnowledge.from_categorical({"color": ["red"]})
        second = BackgroundKnowledge.from_categorical({"shape": ["round"]})
        merged = first.merged_with(second)
        assert merged.attributes == ["color", "shape"]

    def test_merged_with_overlap_raises(self):
        first = BackgroundKnowledge.from_categorical({"color": ["red"]})
        second = BackgroundKnowledge.from_categorical({"color": ["blue"]})
        with pytest.raises(BackgroundKnowledgeError):
            first.merged_with(second)


class TestCommonBackgroundKnowledge:
    def test_identical_backgrounds_agree(self):
        first = medical_background_knowledge()
        second = medical_background_knowledge()
        compatible, reasons = common_background_knowledge(first, second)
        assert compatible
        assert reasons == []

    def test_different_attribute_sets_disagree(self):
        first = medical_background_knowledge()
        second = medical_background_knowledge(include_categorical=False)
        compatible, reasons = common_background_knowledge(first, second)
        assert not compatible
        assert reasons

    def test_different_labels_disagree(self):
        first = medical_background_knowledge(diseases=["anorexia"])
        second = medical_background_knowledge(diseases=["malaria"])
        compatible, reasons = common_background_knowledge(first, second)
        assert not compatible
        assert any("disease" in reason for reason in reasons)

    def test_empty_input_agrees(self):
        compatible, reasons = common_background_knowledge()
        assert compatible and reasons == []
