"""Unit tests for membership functions."""

import pytest

from repro.fuzzy.membership import (
    CrispSetMembership,
    TrapezoidalMembership,
    TriangularMembership,
)


class TestTrapezoidalMembership:
    def test_core_values_have_grade_one(self):
        trapezoid = TrapezoidalMembership(0, 10, 20, 30)
        assert trapezoid.grade(10) == 1.0
        assert trapezoid.grade(15) == 1.0
        assert trapezoid.grade(20) == 1.0

    def test_outside_support_has_grade_zero(self):
        trapezoid = TrapezoidalMembership(0, 10, 20, 30)
        assert trapezoid.grade(-5) == 0.0
        assert trapezoid.grade(35) == 0.0

    def test_rising_slope_is_linear(self):
        trapezoid = TrapezoidalMembership(0, 10, 20, 30)
        assert trapezoid.grade(5) == pytest.approx(0.5)
        assert trapezoid.grade(2.5) == pytest.approx(0.25)

    def test_falling_slope_is_linear(self):
        trapezoid = TrapezoidalMembership(0, 10, 20, 30)
        assert trapezoid.grade(25) == pytest.approx(0.5)
        assert trapezoid.grade(29) == pytest.approx(0.1)

    def test_boundary_values(self):
        trapezoid = TrapezoidalMembership(0, 10, 20, 30)
        assert trapezoid.grade(0) == 0.0
        assert trapezoid.grade(30) == 0.0

    def test_left_shoulder(self):
        shoulder = TrapezoidalMembership(0, 0, 10, 15)
        assert shoulder.grade(0) == 1.0
        assert shoulder.grade(5) == 1.0
        assert shoulder.grade(12.5) == pytest.approx(0.5)

    def test_right_shoulder(self):
        shoulder = TrapezoidalMembership(50, 60, 100, 100)
        assert shoulder.grade(100) == 1.0
        assert shoulder.grade(55) == pytest.approx(0.5)

    def test_invalid_breakpoints_raise(self):
        with pytest.raises(ValueError):
            TrapezoidalMembership(10, 5, 20, 30)
        with pytest.raises(ValueError):
            TrapezoidalMembership(0, 10, 30, 20)

    def test_non_numeric_value_has_grade_zero(self):
        trapezoid = TrapezoidalMembership(0, 10, 20, 30)
        assert trapezoid.grade("not a number") == 0.0
        assert trapezoid.grade(None) == 0.0

    def test_callable_interface(self):
        trapezoid = TrapezoidalMembership(0, 10, 20, 30)
        assert trapezoid(15) == trapezoid.grade(15)

    def test_supports(self):
        trapezoid = TrapezoidalMembership(0, 10, 20, 30)
        assert trapezoid.supports(15)
        assert not trapezoid.supports(40)

    def test_core_and_support_properties(self):
        trapezoid = TrapezoidalMembership(0, 10, 20, 30)
        assert trapezoid.core == (10, 20)
        assert trapezoid.support == (0, 30)

    def test_paper_age_example(self):
        """A 20-year-old must be 0.7 young / 0.3 adult, as in the paper."""
        young = TrapezoidalMembership(10, 13, 18, 74 / 3)
        adult = TrapezoidalMembership(18, 74 / 3, 55, 65)
        assert young.grade(20) == pytest.approx(0.7)
        assert adult.grade(20) == pytest.approx(0.3)
        assert young.grade(15) == 1.0
        assert young.grade(18) == 1.0


class TestTriangularMembership:
    def test_peak_has_grade_one(self):
        triangle = TriangularMembership(0, 10, 20)
        assert triangle.grade(10) == 1.0

    def test_slopes(self):
        triangle = TriangularMembership(0, 10, 20)
        assert triangle.grade(5) == pytest.approx(0.5)
        assert triangle.grade(15) == pytest.approx(0.5)

    def test_outside_support(self):
        triangle = TriangularMembership(0, 10, 20)
        assert triangle.grade(-1) == 0.0
        assert triangle.grade(21) == 0.0

    def test_invalid_breakpoints_raise(self):
        with pytest.raises(ValueError):
            TriangularMembership(10, 5, 20)

    def test_support_property(self):
        triangle = TriangularMembership(2, 5, 9)
        assert triangle.support == (2, 9)


class TestCrispSetMembership:
    def test_member_has_grade_one(self):
        crisp = CrispSetMembership(["female", "male"])
        assert crisp.grade("female") == 1.0

    def test_non_member_has_grade_zero(self):
        crisp = CrispSetMembership(["female"])
        assert crisp.grade("male") == 0.0
        assert crisp.grade(None) == 0.0

    def test_empty_set_raises(self):
        with pytest.raises(ValueError):
            CrispSetMembership([])

    def test_equality_and_hash(self):
        first = CrispSetMembership(["a", "b"])
        second = CrispSetMembership(["b", "a"])
        assert first == second
        assert hash(first) == hash(second)

    def test_values_property(self):
        crisp = CrispSetMembership(["x", "y"])
        assert crisp.values == frozenset({"x", "y"})

    def test_numeric_values_allowed(self):
        crisp = CrispSetMembership([1, 2, 3])
        assert crisp.grade(2) == 1.0
        assert crisp.grade(5) == 0.0
