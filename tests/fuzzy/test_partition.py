"""Unit tests for fuzzy partitions."""

import pytest

from repro.exceptions import BackgroundKnowledgeError
from repro.fuzzy.membership import TrapezoidalMembership
from repro.fuzzy.partition import FuzzyPartition, PartitionBand


@pytest.fixture
def age_partition():
    return FuzzyPartition.from_breakpoints(
        "age", ["young", "adult", "old"], [0, 25, 60, 120], overlap=5
    )


class TestFromBreakpoints:
    def test_labels_and_length(self, age_partition):
        assert age_partition.labels == ["young", "adult", "old"]
        assert len(age_partition) == 3

    def test_domain_bounds(self, age_partition):
        assert age_partition.domain == (0, 120)

    def test_interior_overlap(self, age_partition):
        grades = age_partition.grades(25)
        assert grades["young"] == pytest.approx(0.5)
        assert grades["adult"] == pytest.approx(0.5)

    def test_crisp_partition_with_zero_overlap(self):
        partition = FuzzyPartition.from_breakpoints(
            "bmi", ["low", "high"], [0, 20, 40], overlap=0
        )
        grades = partition.grades(10)
        assert grades == {"low": 1.0, "high": 0.0}

    def test_wrong_breakpoint_count_raises(self):
        with pytest.raises(BackgroundKnowledgeError):
            FuzzyPartition.from_breakpoints("age", ["a", "b"], [0, 10], overlap=1)

    def test_unsorted_breakpoints_raise(self):
        with pytest.raises(BackgroundKnowledgeError):
            FuzzyPartition.from_breakpoints("age", ["a", "b"], [0, 30, 10])

    def test_negative_overlap_raises(self):
        with pytest.raises(BackgroundKnowledgeError):
            FuzzyPartition.from_breakpoints("age", ["a"], [0, 10], overlap=-1)


class TestPartitionProperties:
    def test_covers_inside_and_outside(self, age_partition):
        assert age_partition.covers(30)
        assert not age_partition.covers(500)

    def test_is_ruspini_for_breakpoint_partition(self, age_partition):
        assert age_partition.is_ruspini()

    def test_non_ruspini_partition_detected(self):
        bands = [
            PartitionBand("a", TrapezoidalMembership(0, 0, 10, 20)),
            PartitionBand("b", TrapezoidalMembership(0, 0, 10, 20)),
        ]
        partition = FuzzyPartition("x", bands)
        assert not partition.is_ruspini()

    def test_to_linguistic_variable(self, age_partition):
        variable = age_partition.to_linguistic_variable()
        assert variable.attribute == "age"
        assert variable.labels == ["young", "adult", "old"]
        assert variable.grade("adult", 40) == 1.0

    def test_duplicate_labels_raise(self):
        bands = [
            PartitionBand("a", TrapezoidalMembership(0, 0, 10, 20)),
            PartitionBand("a", TrapezoidalMembership(10, 20, 30, 40)),
        ]
        with pytest.raises(BackgroundKnowledgeError):
            FuzzyPartition("x", bands)

    def test_empty_partition_raises(self):
        with pytest.raises(BackgroundKnowledgeError):
            FuzzyPartition("x", [])

    def test_grades_include_zero_bands(self, age_partition):
        grades = age_partition.grades(5)
        assert set(grades) == {"young", "adult", "old"}
        assert grades["old"] == 0.0
