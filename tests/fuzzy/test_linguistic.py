"""Unit tests for linguistic variables and descriptors."""

import pytest

from repro.exceptions import BackgroundKnowledgeError
from repro.fuzzy.linguistic import Descriptor, LinguisticVariable
from repro.fuzzy.membership import CrispSetMembership, TrapezoidalMembership


@pytest.fixture
def age_variable():
    return LinguisticVariable(
        "age",
        {
            "young": TrapezoidalMembership(0, 0, 18, 25),
            "adult": TrapezoidalMembership(18, 25, 60, 70),
            "old": TrapezoidalMembership(60, 70, 120, 120),
        },
    )


class TestDescriptor:
    def test_string_representation(self):
        assert str(Descriptor("age", "young")) == "age:young"

    def test_equality(self):
        assert Descriptor("age", "young") == Descriptor("age", "young")
        assert Descriptor("age", "young") != Descriptor("age", "adult")

    def test_hashable(self):
        descriptors = {Descriptor("age", "young"), Descriptor("age", "young")}
        assert len(descriptors) == 1

    def test_ordering(self):
        assert Descriptor("age", "adult") < Descriptor("age", "young")
        assert Descriptor("age", "young") < Descriptor("bmi", "normal")


class TestLinguisticVariable:
    def test_labels_preserve_order(self, age_variable):
        assert age_variable.labels == ["young", "adult", "old"]

    def test_descriptors(self, age_variable):
        assert Descriptor("age", "adult") in age_variable.descriptors
        assert len(age_variable.descriptors) == 3

    def test_membership_lookup(self, age_variable):
        assert age_variable.membership("young").grade(10) == 1.0

    def test_unknown_label_raises(self, age_variable):
        with pytest.raises(BackgroundKnowledgeError):
            age_variable.membership("baby")

    def test_grade(self, age_variable):
        assert age_variable.grade("young", 10) == 1.0
        assert age_variable.grade("old", 10) == 0.0

    def test_fuzzify_returns_positive_grades_only(self, age_variable):
        graded = age_variable.fuzzify(20)
        assert Descriptor("age", "young") in graded
        assert Descriptor("age", "adult") in graded
        assert Descriptor("age", "old") not in graded

    def test_fuzzify_grades_sum_to_one_for_ruspini_like_partition(self, age_variable):
        graded = age_variable.fuzzify(20)
        assert sum(graded.values()) == pytest.approx(1.0)

    def test_fuzzify_threshold(self, age_variable):
        graded = age_variable.fuzzify(24, threshold=0.5)
        assert list(graded) == [Descriptor("age", "adult")]

    def test_best_label(self, age_variable):
        assert age_variable.best_label(10) == "young"
        assert age_variable.best_label(90) == "old"

    def test_best_label_none_outside_domain(self):
        variable = LinguisticVariable(
            "bmi", {"normal": TrapezoidalMembership(18, 19, 24, 26)}
        )
        assert variable.best_label(50) is None

    def test_contains_and_len(self, age_variable):
        assert "young" in age_variable
        assert "baby" not in age_variable
        assert len(age_variable) == 3

    def test_iteration(self, age_variable):
        assert list(age_variable) == ["young", "adult", "old"]

    def test_empty_terms_raise(self):
        with pytest.raises(BackgroundKnowledgeError):
            LinguisticVariable("age", {})

    def test_categorical_variable(self):
        variable = LinguisticVariable(
            "sex",
            {
                "female": CrispSetMembership(["female"]),
                "male": CrispSetMembership(["male"]),
            },
        )
        graded = variable.fuzzify("female")
        assert graded == {Descriptor("sex", "female"): 1.0}
        assert variable.has_label("male")
