"""Unit tests for the built-in vocabularies."""

import pytest

from repro.fuzzy.linguistic import Descriptor
from repro.fuzzy.vocabularies import (
    DEFAULT_DISEASES,
    age_variable,
    bmi_variable,
    disease_variable,
    medical_background_knowledge,
    sex_variable,
    uniform_numeric_background_knowledge,
)


class TestMedicalVocabulary:
    def test_age_running_example(self):
        age = age_variable()
        assert age.grade("young", 15) == 1.0
        assert age.grade("young", 18) == 1.0
        assert age.grade("young", 20) == pytest.approx(0.7)
        assert age.grade("adult", 20) == pytest.approx(0.3)

    def test_bmi_running_example(self):
        bmi = bmi_variable()
        assert bmi.grade("underweight", 15) == 1.0
        assert bmi.grade("underweight", 17.5) == 1.0
        assert bmi.grade("normal", 19.5) == 1.0
        assert bmi.grade("normal", 24) == 1.0
        assert bmi.grade("underweight", 20) == 0.0

    def test_sex_variable_accepts_aliases(self):
        sex = sex_variable()
        assert sex.grade("female", "F") == 1.0
        assert sex.grade("male", "m") == 1.0
        assert sex.grade("female", "male") == 0.0

    def test_disease_variable_defaults(self):
        disease = disease_variable()
        assert set(disease.labels) == set(DEFAULT_DISEASES)

    def test_medical_background_full(self):
        background = medical_background_knowledge()
        assert background.attributes == ["age", "bmi", "sex", "disease"]

    def test_medical_background_numeric_only(self):
        background = medical_background_knowledge(include_categorical=False)
        assert background.attributes == ["age", "bmi"]

    def test_custom_disease_list(self):
        background = medical_background_knowledge(diseases=["flu", "cold"])
        assert background.labels("disease") == ["flu", "cold"]


class TestUniformBackground:
    def test_band_count_and_names(self):
        background = uniform_numeric_background_knowledge(
            {"x": (0, 100)}, labels_per_attribute=5
        )
        assert len(background.labels("x")) == 5

    def test_custom_label_names(self):
        background = uniform_numeric_background_knowledge(
            {"x": (0, 100)},
            labels_per_attribute=3,
            label_names=["low", "mid", "high"],
        )
        assert background.labels("x") == ["low", "mid", "high"]

    def test_coverage_of_domain(self):
        background = uniform_numeric_background_knowledge({"x": (0, 10)})
        graded = background.fuzzify_value("x", 5.0)
        assert graded
        assert all(isinstance(d, Descriptor) for d in graded)

    def test_empty_domain_raises(self):
        with pytest.raises(ValueError):
            uniform_numeric_background_knowledge({"x": (10, 10)})

    def test_multiple_attributes(self):
        background = uniform_numeric_background_knowledge(
            {"x": (0, 1), "y": (0, 100)}, labels_per_attribute=2
        )
        assert background.attributes == ["x", "y"]
        assert background.grid_size() == 4
