"""Batched querying: byte-identical to the sequential per-query path.

The acceptance bar of the batched query engine: ``pose_queries`` /
``query_batch`` / ``staleness_snapshots`` must produce exactly the results
of their sequential counterparts — same routing sets, query ids, message
counters, staleness figures and RNG evolution — and the indexed fast path
(``query_engine_enabled``) must be indistinguishable from the legacy
full-scan path in every protocol-visible outcome.
"""

from __future__ import annotations

import pytest

from repro.core.config import ProtocolConfig
from repro.core.routing import QueryRequest, RoutingPolicy
from repro.core.session import SystemBuilder
from repro.fuzzy.vocabularies import medical_background_knowledge
from repro.network.overlay import Overlay
from repro.network.topology import TopologyConfig
from repro.workloads.patients import MedicalWorkload, build_peer_databases
from repro.workloads.queries import paper_example_query


def _planned_session(seed: int = 3, peer_count: int = 64, churn: bool = False):
    builder = (
        SystemBuilder()
        .topology(peer_count=peer_count, average_degree=4)
        .planned_content(hit_rate=0.1)
        .seed(seed)
    )
    if churn:
        builder = builder.churn(duration_seconds=2 * 3600.0)
    return builder.build()


def _real_session(seed: int = 5, peer_count: int = 16):
    background = medical_background_knowledge()
    overlay = Overlay.generate(
        TopologyConfig(peer_count=peer_count, average_degree=4, seed=seed)
    )
    workload = MedicalWorkload(records_per_peer=8, matching_fraction=0.25, seed=seed)
    databases = build_peer_databases(overlay.peer_ids, workload)
    return (
        SystemBuilder()
        .topology(overlay)
        .background(background)
        .protocol(superpeer_fraction=1 / 8, construction_ttl=3)
        .real_content(databases)
        .seed(seed)
        .build()
    )


class TestPoseQueriesEquivalence:
    @pytest.mark.parametrize("seed", [0, 7, 21])
    def test_batched_matches_sequential_planned(self, seed):
        batched = _planned_session(seed=seed)
        sequential = _planned_session(seed=seed)
        originators = batched.partner_ids()[:6]
        requests = [
            QueryRequest(originator=originator, required_results=required)
            for originator in originators
            for required in (None, 3)
        ]

        batch_results = batched.system.pose_queries(requests)
        seq_results = [
            sequential.system.pose_query(
                request.originator,
                required_results=request.required_results,
            )
            for request in requests
        ]
        assert batch_results == seq_results
        assert (
            batched.system.counter.by_type() == sequential.system.counter.by_type()
        ), "message accounting diverged between batched and sequential posing"
        # Follow-up state is indistinguishable too.
        assert batched.staleness() == sequential.staleness()

    def test_mixed_policies_and_limits(self):
        batched = _planned_session(seed=11)
        sequential = _planned_session(seed=11)
        partner = batched.partner_ids()[0]
        requests = [
            QueryRequest(originator=partner, policy=RoutingPolicy.ALL),
            QueryRequest(originator=partner, policy=RoutingPolicy.PRECISION),
            QueryRequest(originator=partner, policy=RoutingPolicy.RECALL, max_domains=1),
        ]
        batch_results = batched.system.pose_queries(requests)
        seq_results = [
            sequential.system.pose_query(
                request.originator,
                policy=request.policy,
                max_domains=request.max_domains,
            )
            for request in requests
        ]
        assert batch_results == seq_results

    def test_batch_state_is_torn_down(self):
        session = _planned_session(seed=2)
        session.system.pose_queries(
            [QueryRequest(originator=session.default_originator())]
        )
        assert session.system._batch_state is None  # noqa: SLF001


class TestQueryBatchFacade:
    def test_query_batch_matches_query_many(self):
        batched = _planned_session(seed=9)
        sequential = _planned_session(seed=9)
        a = batched.query_batch(count=8, required_results=2)
        b = sequential.query_many(count=8, required_results=2)
        assert [answer.routing for answer in a] == [answer.routing for answer in b]
        assert [answer.staleness for answer in a] == [answer.staleness for answer in b]
        assert [answer.query_messages for answer in a] == [
            answer.query_messages for answer in b
        ]

    def test_query_batch_with_explicit_requests(self):
        batched = _planned_session(seed=4)
        sequential = _planned_session(seed=4)
        partners = batched.partner_ids()[:3]
        requests = [
            QueryRequest(originator=partner, required_results=2)
            for partner in partners
        ]
        a = batched.query_batch(requests=requests)
        b = [
            sequential.query(partner, required_results=2) for partner in partners
        ]
        assert [answer.routing for answer in a] == [answer.routing for answer in b]
        assert [answer.staleness for answer in a] == [answer.staleness for answer in b]

    def test_requests_and_count_are_mutually_exclusive(self):
        from repro.exceptions import ConfigurationError

        session = _planned_session(seed=1)
        with pytest.raises(ConfigurationError):
            session.query_batch(
                count=3,
                requests=[QueryRequest(originator=session.default_originator())],
            )

    def test_query_batch_real_content_answers(self):
        batched = _real_session(seed=5)
        sequential = _real_session(seed=5)
        query = paper_example_query()
        a = batched.query_batch(queries=[query, query])
        b = sequential.query_many(queries=[query, query])
        assert [answer.routing for answer in a] == [answer.routing for answer in b]
        for answer_a, answer_b in zip(a, b):
            if answer_a.answer is None:
                assert answer_b.answer is None
            else:
                assert answer_a.answer.classes == answer_b.answer.classes


class TestStalenessBatch:
    def test_staleness_batch_matches_sequential(self):
        batched = _planned_session(seed=17, churn=True)
        sequential = _planned_session(seed=17, churn=True)
        batched.run_until(3600.0)
        sequential.run_until(3600.0)
        assert batched.staleness_batch(4) == [
            sequential.staleness() for _ in range(4)
        ]
        # Query-id allocation advanced identically.
        assert batched.next_query_id() == sequential.next_query_id()

    def test_staleness_batch_requires_planned_content(self):
        from repro.exceptions import ProtocolError

        session = _real_session()
        with pytest.raises(ProtocolError):
            session.staleness_batch(2)


class TestQueryEngineToggle:
    @pytest.mark.parametrize("seed", [0, 13])
    def test_engine_off_is_byte_identical_planned(self, seed):
        fast = _planned_session(seed=seed, churn=True)
        legacy = _planned_session(seed=seed, churn=True)
        legacy.system.query_engine_enabled = False
        assert not legacy.system.query_engine_enabled

        fast.run_until(1800.0)
        legacy.run_until(1800.0)
        fast_answers = fast.query_batch(count=6, required_results=3)
        legacy_answers = legacy.query_many(count=6, required_results=3)
        assert [a.routing for a in fast_answers] == [
            a.routing for a in legacy_answers
        ]
        assert [a.staleness for a in fast_answers] == [
            a.staleness for a in legacy_answers
        ]
        assert fast.system.counter.by_type() == legacy.system.counter.by_type()

    def test_engine_off_is_byte_identical_real(self):
        fast = _real_session(seed=8)
        legacy = _real_session(seed=8)
        legacy.system.query_engine_enabled = False
        assert legacy.content.use_selection_cache is False
        assert fast.content.use_selection_cache is True

        query = paper_example_query()
        for _round in range(3):
            a = fast.query(query=query)
            b = legacy.query(query=query)
            assert a.routing == b.routing
        assert fast.system.counter.by_type() == legacy.system.counter.by_type()

    def test_toggle_reaches_existing_content_model(self):
        session = _real_session(seed=8)
        session.system.query_engine_enabled = False
        assert session.content.use_selection_cache is False
        session.system.query_engine_enabled = True
        assert session.content.use_selection_cache is True


class TestLegacyConstructionUnaffected:
    def test_raw_system_pose_queries(self):
        overlay = Overlay.generate(TopologyConfig(peer_count=32, seed=7))
        from repro.core.protocol import SummaryManagementSystem

        system = SummaryManagementSystem(overlay, config=ProtocolConfig(), seed=7)
        system.use_planned_content(matching_fraction=0.1, seed=7)
        system.build_domains()
        partner = next(p for p in overlay.peer_ids if p not in system.domains)
        results = system.pose_queries(
            [QueryRequest(originator=partner), QueryRequest(originator=partner)]
        )
        assert [result.query_id for result in results] == [0, 1]
