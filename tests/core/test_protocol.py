"""Integration-level tests for the end-to-end protocol engine."""

import pytest

from repro.core.config import ProtocolConfig
from repro.core.protocol import (
    QUERY_MESSAGE_TYPES,
    UPDATE_MESSAGE_TYPES,
    SummaryManagementSystem,
)
from repro.core.routing import RoutingPolicy
from repro.exceptions import ProtocolError
from repro.fuzzy.vocabularies import medical_background_knowledge
from repro.network.churn import LifetimeDistribution
from repro.network.overlay import Overlay
from repro.network.topology import TopologyConfig
from repro.workloads.patients import build_peer_databases, MedicalWorkload
from repro.workloads.queries import paper_example_query


def _planned_system(peer_count=64, alpha=0.3, seed=0, superpeer_fraction=1 / 16):
    overlay = Overlay.generate(TopologyConfig(peer_count=peer_count, seed=seed))
    config = ProtocolConfig(
        freshness_threshold=alpha, superpeer_fraction=superpeer_fraction
    )
    system = SummaryManagementSystem(overlay, config=config, seed=seed)
    system.use_planned_content(matching_fraction=0.1, seed=seed)
    system.build_domains()
    return system


class TestSetup:
    def test_build_domains_assigns_every_peer(self):
        system = _planned_system()
        superpeers = set(system.domains)
        for peer_id in system.overlay.peer_ids:
            if peer_id in superpeers:
                continue
            assert system.assignment[peer_id] in superpeers

    def test_domain_of_lookup(self):
        system = _planned_system()
        sp_id = next(iter(system.domains))
        assert system.domain_of(sp_id).summary_peer_id == sp_id
        partner = next(iter(system.assignment))
        assert system.domain_of(partner) is not None

    def test_superpeers_know_each_other(self):
        system = _planned_system()
        for sp_id in system.domains:
            known = system.overlay.peer(sp_id).known_summary_peers
            assert known == set(system.domains) - {sp_id}

    def test_query_without_content_raises(self):
        overlay = Overlay.generate(TopologyConfig(peer_count=16, seed=1))
        system = SummaryManagementSystem(overlay)
        system.build_domains()
        with pytest.raises(ProtocolError):
            system.pose_query(overlay.peer_ids[0])


class TestPlannedQueries:
    def test_single_domain_query_counts_messages(self):
        system = _planned_system()
        originator = next(iter(system.assignment))
        result = system.pose_query(originator, max_domains=1)
        assert result.domains_visited == 1
        outcome = result.domain_outcomes[0]
        assert result.total_messages == outcome.messages
        assert outcome.messages >= 1

    def test_total_lookup_query_visits_multiple_domains(self):
        system = _planned_system()
        originator = next(iter(system.assignment))
        required = round(0.1 * system.overlay.size)
        result = system.pose_query(originator, required_results=required)
        assert result.results >= required
        assert result.domains_visited >= 2
        assert result.satisfied()
        assert result.flooding_messages > 0

    def test_no_false_answers_without_churn(self):
        system = _planned_system()
        originator = next(iter(system.assignment))
        result = system.pose_query(originator, required_results=5)
        assert result.false_positive_rate == 0.0
        assert result.false_negative_rate == 0.0

    def test_query_traffic_recorded_by_type(self):
        system = _planned_system()
        before = system.counter.count_types(list(QUERY_MESSAGE_TYPES))
        system.pose_query(next(iter(system.assignment)), required_results=3)
        assert system.counter.count_types(list(QUERY_MESSAGE_TYPES)) > before

    def test_query_results_history(self):
        system = _planned_system()
        system.pose_query(next(iter(system.assignment)), max_domains=1)
        assert len(system.query_results) == 1

    def test_query_and_query_id_together_rejected(self):
        """Passing both would silently ignore query_id; it must raise instead."""
        system = _planned_system()
        originator = next(iter(system.assignment))
        with pytest.raises(ProtocolError, match="either query or query_id"):
            system.pose_query(
                originator, query=paper_example_query(), query_id=7
            )
        # The ambiguous call must not have consumed an id or recorded a result.
        assert system.query_results == []
        assert system.next_query_id() == 0


class TestRoutingEdges:
    """Edge cases of the SQ routing surface."""

    def test_max_domains_caps_a_total_lookup(self):
        """required_results keeps extending only until max_domains cuts it off."""
        system = _planned_system()
        originator = next(iter(system.assignment))
        # Ask for more results than a single domain can provide...
        unbounded = system.pose_query(
            originator, required_results=system.overlay.size
        )
        assert unbounded.domains_visited == len(system.domains)
        # ...then cap the visit at one domain: the quota stays unmet.
        capped = system.pose_query(
            originator, required_results=system.overlay.size, max_domains=1
        )
        assert capped.domains_visited == 1
        assert not capped.satisfied()
        assert capped.results <= unbounded.results

    def test_required_results_stops_before_max_domains(self):
        """A satisfied quota stops the walk even with domain budget left."""
        system = _planned_system()
        originator = next(iter(system.assignment))
        result = system.pose_query(
            originator, required_results=1, max_domains=len(system.domains)
        )
        assert result.satisfied()
        assert result.domains_visited < len(system.domains)

    def test_max_domains_zero_visits_nothing(self):
        system = _planned_system()
        originator = next(iter(system.assignment))
        result = system.pose_query(originator, max_domains=0)
        assert result.domains_visited == 0
        assert result.results == 0
        assert result.total_messages == 0

    def test_empty_domain_network_yields_empty_result(self):
        """A network with no built domains answers with an empty result."""
        overlay = Overlay.generate(TopologyConfig(peer_count=16, seed=9))
        system = SummaryManagementSystem(overlay, seed=9)
        system.use_planned_content(matching_fraction=0.1, seed=9)
        # build_domains is never called: there is nothing to route through.
        result = system.pose_query(overlay.peer_ids[0], required_results=3)
        assert result.domains_visited == 0
        assert result.results == 0
        assert result.total_messages == 0
        assert not result.satisfied()


class TestChurnAndMaintenance:
    def test_schedule_churn_generates_departures(self):
        system = _planned_system(peer_count=48)
        scheduled = system.schedule_churn(
            6 * 3600.0, lifetime=LifetimeDistribution(), graceful_fraction=1.0
        )
        assert scheduled > 0
        system.run(until=6 * 3600.0)
        assert system.counter.count_types(list(UPDATE_MESSAGE_TYPES)) > 0

    def test_reconciliation_triggered_by_churn(self):
        system = _planned_system(peer_count=48, alpha=0.1)
        system.schedule_churn(8 * 3600.0, graceful_fraction=1.0)
        system.run()
        assert system.maintenance.stats.reconciliations > 0

    def test_higher_alpha_reconciles_less(self):
        low = _planned_system(peer_count=48, alpha=0.1, seed=3)
        high = _planned_system(peer_count=48, alpha=0.8, seed=3)
        for system in (low, high):
            system.schedule_churn(8 * 3600.0, graceful_fraction=1.0)
            system.run()
        assert (
            low.maintenance.stats.reconciliations
            >= high.maintenance.stats.reconciliations
        )

    def test_modifications_generate_push_messages(self):
        system = _planned_system(peer_count=32)
        scheduled = system.schedule_modifications(3600.0, 1.0 / 600.0)
        assert scheduled > 0
        system.run()
        assert system.maintenance.stats.push_messages > 0

    def test_staleness_snapshot_requires_planned_content(self, background):
        overlay = Overlay.generate(TopologyConfig(peer_count=16, seed=2))
        system = SummaryManagementSystem(overlay, background=background)
        databases = build_peer_databases(
            overlay.peer_ids, MedicalWorkload(records_per_peer=3)
        )
        system.attach_databases(databases)
        system.build_domains()
        with pytest.raises(ProtocolError):
            system.staleness_snapshot()

    def test_staleness_snapshot_after_churn(self):
        system = _planned_system(peer_count=64, alpha=0.5)
        system.schedule_churn(4 * 3600.0, graceful_fraction=1.0, rejoin=False)
        system.run()
        snapshot = system.staleness_snapshot()
        assert snapshot.relevant_count >= 0
        assert 0.0 <= snapshot.worst_stale_fraction <= 1.0
        assert snapshot.real_false_negative_fraction <= snapshot.worst_stale_fraction + 1e-9

    def test_update_traffic_report(self):
        system = _planned_system(peer_count=32)
        system.schedule_churn(3600.0, graceful_fraction=1.0)
        system.run()
        report = system.update_traffic_report(3600.0)
        assert report.total_messages >= 0
        assert report.peer_count == 32


class TestRealContent:
    @pytest.fixture
    def real_system(self):
        overlay = Overlay.generate(TopologyConfig(peer_count=24, seed=4))
        background = medical_background_knowledge()
        config = ProtocolConfig(superpeer_fraction=1 / 8)
        system = SummaryManagementSystem(overlay, config=config, background=background, seed=4)
        databases = build_peer_databases(
            overlay.peer_ids,
            MedicalWorkload(records_per_peer=6, matching_fraction=0.25, seed=4),
        )
        system.attach_databases(databases)
        system.build_domains()
        return system

    def test_domains_have_global_summaries(self, real_system):
        assert any(d.has_global_summary() for d in real_system.domains.values())

    def test_real_query_finds_matching_peers(self, real_system):
        originator = next(iter(real_system.assignment))
        result = real_system.pose_query(
            originator, query=paper_example_query(), policy=RoutingPolicy.ALL
        )
        assert result.results > 0
        # Relevance came from real summaries; responses from real databases.
        assert result.responding_peers <= result.contacted_peers

    def test_real_query_has_no_false_negatives_in_static_network(self, real_system):
        originator = next(iter(real_system.assignment))
        result = real_system.pose_query(originator, query=paper_example_query())
        assert result.false_negative_rate == 0.0
