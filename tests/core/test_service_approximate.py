"""Unit tests for the local summary service and domain-level approximate answering."""

import pytest

from repro.core.approximate import answer_across_domains, answer_in_domain, localize_peers
from repro.core.domain import Domain
from repro.core.service import LocalSummaryService
from repro.database.generator import PatientGenerator
from repro.database.schema import patient_schema
from repro.database.engine import LocalDatabase
from repro.exceptions import ProtocolError, QueryError
from repro.database.query import Comparison, SelectionQuery
from repro.fuzzy.vocabularies import medical_background_knowledge
from repro.saintetiq.merging import merge_hierarchies
from repro.workloads.queries import paper_example_query


@pytest.fixture
def peer_database(background):
    database = LocalDatabase(background=background)
    database.create_relation(
        "patient",
        patient_schema(),
        [
            {"id": "t1", "age": 15, "sex": "female", "bmi": 17, "disease": "anorexia"},
            {"id": "t2", "age": 20, "sex": "male", "bmi": 20, "disease": "malaria"},
            {"id": "t3", "age": 18, "sex": "female", "bmi": 16.5, "disease": "anorexia"},
        ],
    )
    return database


class TestLocalSummaryService:
    def test_rebuild_from_database(self, background, peer_database):
        service = LocalSummaryService("p1", background, database=peer_database)
        processed = service.rebuild_from_database()
        assert processed == 3
        assert not service.summary.is_empty()
        assert service.summary.peer_extent() == {"p1"}

    def test_rebuild_without_database_raises(self, background):
        service = LocalSummaryService("p1", background)
        with pytest.raises(ProtocolError):
            service.rebuild_from_database()

    def test_add_record_incrementally(self, background):
        service = LocalSummaryService("p1", background)
        assert service.add_record(
            {"age": 30, "bmi": 22, "sex": "male", "disease": "malaria"}
        ) > 0

    def test_publish_and_drift(self, background, peer_database):
        service = LocalSummaryService("p1", background, database=peer_database)
        service.rebuild_from_database()
        service.publish()
        assert service.drift_since_publication() == 0.0
        assert not service.should_push(0.1)
        # Insert records in a very different region of the descriptor space.
        peer_database.insert(
            "patient",
            {"id": "t9", "age": 85, "sex": "male", "bmi": 38, "disease": "diabetes"},
        )
        service.refresh_incremental()
        assert service.drift_since_publication() > 0.0
        assert service.should_push(0.01)

    def test_refresh_incremental_noop_when_unchanged(self, background, peer_database):
        service = LocalSummaryService("p1", background, database=peer_database)
        service.rebuild_from_database()
        assert service.refresh_incremental() == 0

    def test_publish_returns_independent_snapshot(self, background, peer_database):
        service = LocalSummaryService("p1", background, database=peer_database)
        service.rebuild_from_database()
        snapshot = service.publish()
        snapshot.add_record({"age": 1, "bmi": 15, "sex": "male", "disease": "asthma"})
        assert snapshot.records_processed != service.summary.records_processed


class TestApproximateAnswering:
    @pytest.fixture
    def domain_with_summary(self, background, peer_database):
        service = LocalSummaryService("p1", background, database=peer_database)
        service.rebuild_from_database()
        domain = Domain.create("sp")
        domain.add_partner("p1", distance=1.0)
        domain.install_global_summary(merge_hierarchies([service.summary], owner="sp"))
        return domain

    def test_paper_example_answer_is_young(self, domain_with_summary, background):
        result = answer_in_domain(domain_with_summary, paper_example_query(), background)
        merged = result.answer.merged_output()
        assert merged["age"] == frozenset({"young"})

    def test_peer_localization(self, domain_with_summary, background):
        peers = localize_peers(domain_with_summary, paper_example_query(), background)
        assert peers == {"p1"}

    def test_no_global_summary_raises(self, background):
        domain = Domain.create("sp")
        with pytest.raises(ProtocolError):
            answer_in_domain(domain, paper_example_query(), background)

    def test_unknown_attribute_raises(self, domain_with_summary, background):
        query = SelectionQuery("patient", [Comparison("height", ">", 150)])
        with pytest.raises(QueryError):
            answer_in_domain(domain_with_summary, query, background)

    def test_answer_across_domains(self, domain_with_summary, background):
        empty_domain = Domain.create("sp2")
        merged = answer_across_domains(
            [empty_domain, domain_with_summary], paper_example_query(), background
        )
        assert merged is not None
        assert "young" in merged.merged_output()["age"]

    def test_answer_across_domains_all_empty(self, background):
        assert (
            answer_across_domains([Domain.create("sp")], paper_example_query(), background)
            is None
        )

    def test_estimated_matching_records(self, domain_with_summary, background):
        result = answer_in_domain(domain_with_summary, paper_example_query(), background)
        assert result.estimated_matching_records == pytest.approx(2.0, abs=0.5)
