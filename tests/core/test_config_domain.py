"""Unit tests for protocol configuration and domains."""

import pytest

from repro.core.config import ProtocolConfig
from repro.core.domain import Domain
from repro.core.freshness import Freshness, FreshnessMode
from repro.exceptions import ConfigurationError, ProtocolError


class TestProtocolConfig:
    def test_defaults_match_paper(self):
        config = ProtocolConfig()
        assert config.construction_ttl == 2
        assert config.flooding_ttl == 3
        assert config.freshness_mode is FreshnessMode.ONE_BIT
        assert 0 < config.freshness_threshold <= 1

    def test_invalid_threshold_raises(self):
        with pytest.raises(ConfigurationError):
            ProtocolConfig(freshness_threshold=0.0)
        with pytest.raises(ConfigurationError):
            ProtocolConfig(freshness_threshold=1.5)

    def test_invalid_ttl_raises(self):
        with pytest.raises(ConfigurationError):
            ProtocolConfig(construction_ttl=0)
        with pytest.raises(ConfigurationError):
            ProtocolConfig(flooding_ttl=0)

    def test_invalid_probability_raises(self):
        with pytest.raises(ConfigurationError):
            ProtocolConfig(modification_probability=1.5)

    def test_invalid_superpeer_fraction_raises(self):
        with pytest.raises(ConfigurationError):
            ProtocolConfig(superpeer_fraction=0.0)

    def test_with_threshold_copies_other_fields(self):
        config = ProtocolConfig(construction_ttl=3, flooding_ttl=4)
        copy = config.with_threshold(0.5)
        assert copy.freshness_threshold == 0.5
        assert copy.construction_ttl == 3
        assert copy.flooding_ttl == 4
        assert config.freshness_threshold != 0.5


class TestDomain:
    def test_create_and_add_partner(self):
        domain = Domain.create("sp")
        domain.add_partner("p1", distance=10.0)
        assert domain.is_partner("p1")
        assert domain.partner_ids == ["p1"]
        assert domain.size == 2  # superpeer + one partner

    def test_distance_bookkeeping(self):
        domain = Domain.create("sp")
        domain.add_partner("p1", distance=25.0)
        assert domain.distance_to("p1") == 25.0
        assert domain.distance_to("p2") == float("inf")

    def test_remove_partner(self):
        domain = Domain.create("sp")
        domain.add_partner("p1", distance=1.0)
        domain.remove_partner("p1")
        assert not domain.is_partner("p1")
        assert domain.distance_to("p1") == float("inf")

    def test_freshness_views(self):
        domain = Domain.create("sp")
        domain.add_partner("p1", distance=1.0)
        domain.add_partner("p2", distance=1.0, freshness=Freshness.STALE)
        assert domain.fresh_partners() == ["p1"]
        assert domain.old_partners() == ["p2"]
        assert domain.old_fraction() == pytest.approx(0.5)
        assert domain.needs_reconciliation(0.5)
        assert not domain.needs_reconciliation(0.6)

    def test_global_summary_installation(self, example_hierarchy):
        domain = Domain.create("sp")
        assert not domain.has_global_summary()
        assert domain.coverage() == set()
        domain.install_global_summary(example_hierarchy)
        assert domain.has_global_summary()
        assert domain.coverage() == {"peer-a"}

    def test_validate_rejects_nonzero_self_distance(self):
        domain = Domain.create("sp")
        domain.add_partner("sp", distance=5.0)
        with pytest.raises(ProtocolError):
            domain.validate()

    def test_validate_passes_on_consistent_domain(self):
        domain = Domain.create("sp")
        domain.add_partner("p1", distance=3.0)
        domain.validate()
