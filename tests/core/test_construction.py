"""Unit tests for the summary construction protocol (Section 4.1)."""

import pytest

from repro.core.config import ProtocolConfig
from repro.core.construction import DomainBuilder
from repro.fuzzy.vocabularies import medical_background_knowledge
from repro.network.messages import MessageType
from repro.network.overlay import Overlay
from repro.network.topology import TopologyConfig
from repro.saintetiq.hierarchy import SummaryHierarchy
from repro.database.generator import PatientGenerator


@pytest.fixture
def overlay():
    return Overlay.generate(TopologyConfig(peer_count=64, seed=3))


def _local_summaries(peer_ids, records_per_peer=5):
    background = medical_background_knowledge(include_categorical=False)
    generator = PatientGenerator(seed=0, background=background)
    summaries = {}
    for peer_id in peer_ids:
        hierarchy = SummaryHierarchy(
            background, attributes=["age", "bmi"], owner=peer_id
        )
        hierarchy.add_records(generator.records(records_per_peer))
        summaries[peer_id] = hierarchy
    return summaries


class TestDomainConstruction:
    def test_every_online_peer_joins_a_domain(self, overlay):
        builder = DomainBuilder(ProtocolConfig())
        report = builder.build(overlay)
        superpeers = set(report.domains)
        for peer_id in overlay.peer_ids:
            if peer_id in superpeers:
                continue
            assert report.assignment.get(peer_id) in superpeers
        assert not report.orphan_peers

    def test_assignment_consistent_with_domains(self, overlay):
        report = DomainBuilder().build(overlay)
        for peer_id, sp_id in report.assignment.items():
            assert report.domains[sp_id].is_partner(peer_id)

    def test_peer_belongs_to_exactly_one_domain(self, overlay):
        report = DomainBuilder().build(overlay)
        seen = {}
        for sp_id, domain in report.domains.items():
            for partner in domain.partner_ids:
                assert partner not in seen, f"{partner} in two domains"
                seen[partner] = sp_id

    def test_superpeers_elected_by_degree_when_not_given(self, overlay):
        report = DomainBuilder(ProtocolConfig(superpeer_fraction=1 / 8)).build(overlay)
        assert len(report.domains) == round(64 / 8)

    def test_explicit_summary_peers_respected(self, overlay):
        chosen = overlay.peer_ids[:3]
        report = DomainBuilder().build(overlay, summary_peers=chosen)
        assert set(report.domains) == set(chosen)

    def test_message_accounting(self, overlay):
        report = DomainBuilder().build(overlay)
        assert report.messages.count(MessageType.SUMPEER) > 0
        # One localsum per (non-superpeer) partner at least; switches add more.
        partners = sum(len(d.partner_ids) for d in report.domains.values())
        assert report.messages.count(MessageType.LOCALSUM) >= partners

    def test_partnership_switch_prefers_closer_summary_peer(self, overlay):
        report = DomainBuilder().build(overlay)
        # Every partner's recorded distance must be the latency to its own SP.
        for sp_id, domain in report.domains.items():
            for partner in domain.partner_ids:
                assert domain.distance_to(partner) == pytest.approx(
                    overlay.latency(partner, sp_id)
                )

    def test_offline_peers_are_skipped(self, overlay):
        victim = next(
            p for p in overlay.peer_ids if overlay.degree(p) <= 3
        )
        overlay.peer(victim).go_offline()
        report = DomainBuilder().build(overlay)
        assert victim not in report.assignment
        for domain in report.domains.values():
            assert not domain.is_partner(victim)

    def test_domain_of_helper(self, overlay):
        report = DomainBuilder().build(overlay)
        some_sp = next(iter(report.domains))
        assert report.domain_of(some_sp) == some_sp
        some_partner = next(iter(report.assignment))
        assert report.domain_of(some_partner) == report.assignment[some_partner]
        assert report.domain_of("ghost") is None

    def test_single_summary_peer_with_large_ttl_covers_everything(self):
        overlay = Overlay.generate(TopologyConfig(peer_count=40, seed=9))
        hub = max(overlay.peer_ids, key=overlay.degree)
        config = ProtocolConfig(construction_ttl=10)
        report = DomainBuilder(config).build(overlay, summary_peers=[hub])
        assert len(report.domains[hub].partner_ids) == 39


class TestGlobalSummaryMaterialisation:
    def test_global_summaries_merged_from_partners(self, overlay):
        summaries = _local_summaries(overlay.peer_ids)
        report = DomainBuilder().build(overlay, local_summaries=summaries)
        for sp_id, domain in report.domains.items():
            assert domain.has_global_summary()
            expected_peers = set(domain.partner_ids) | {sp_id}
            assert domain.coverage() <= expected_peers
            assert domain.coverage() >= set(domain.partner_ids)

    def test_without_local_summaries_no_global_summary(self, overlay):
        report = DomainBuilder().build(overlay)
        assert all(not d.has_global_summary() for d in report.domains.values())

    def test_virtual_complete_summary_covers_all_partners(self, overlay):
        """The union of global summaries describes every partner peer."""
        summaries = _local_summaries(overlay.peer_ids)
        report = DomainBuilder().build(overlay, local_summaries=summaries)
        covered = set()
        for domain in report.domains.values():
            covered |= domain.coverage()
        assert covered >= set(report.assignment)
