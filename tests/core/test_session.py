"""Tests of the declarative session façade (SystemBuilder / NetworkSession)."""

import pytest

from repro.core.config import ProtocolConfig
from repro.core.protocol import SummaryManagementSystem
from repro.core.session import (
    MaintenanceReport,
    NetworkSession,
    QueryAnswer,
    SessionTraffic,
    SystemBuilder,
)
from repro.exceptions import ConfigurationError, ProtocolError
from repro.fuzzy.vocabularies import medical_background_knowledge
from repro.network.overlay import Overlay
from repro.network.topology import TopologyConfig
from repro.workloads.patients import MedicalWorkload, build_peer_databases
from repro.workloads.queries import paper_example_query


def _planned_builder(peer_count=64, seed=0, hit_rate=0.1):
    return (
        SystemBuilder()
        .topology(peer_count=peer_count, average_degree=4)
        .planned_content(hit_rate=hit_rate)
        .seed(seed)
    )


class TestBuilderValidation:
    def test_missing_topology_rejected(self):
        with pytest.raises(ConfigurationError, match="no topology"):
            SystemBuilder().planned_content().build()

    def test_missing_content_rejected(self):
        with pytest.raises(ConfigurationError, match="no content"):
            SystemBuilder().topology(peer_count=16).build()

    def test_both_content_modes_rejected(self):
        databases = {"p0": object()}
        with pytest.raises(ConfigurationError, match="mutually exclusive"):
            (
                SystemBuilder()
                .topology(peer_count=16)
                .planned_content()
                .real_content(databases)  # type: ignore[arg-type]
                .build()
            )

    def test_real_content_requires_background(self):
        overlay = Overlay.generate(TopologyConfig(peer_count=8, seed=1))
        databases = build_peer_databases(
            overlay.peer_ids, MedicalWorkload(records_per_peer=2, seed=1)
        )
        with pytest.raises(ConfigurationError, match="background"):
            SystemBuilder().topology(overlay).real_content(databases).build()

    def test_bad_hit_rate_rejected(self):
        with pytest.raises(ConfigurationError, match="hit_rate"):
            SystemBuilder().topology(peer_count=16).planned_content(
                hit_rate=1.5
            ).build()

    def test_bad_churn_horizon_rejected(self):
        with pytest.raises(ConfigurationError, match="duration_seconds"):
            _planned_builder(16).churn(duration_seconds=0.0).build()

    def test_bad_graceful_fraction_rejected(self):
        with pytest.raises(ConfigurationError, match="graceful_fraction"):
            _planned_builder(16).churn(3600.0, graceful_fraction=2.0).build()

    def test_negative_modification_rate_rejected(self):
        with pytest.raises(ConfigurationError, match="rate_per_peer"):
            _planned_builder(16).modifications(3600.0, -1.0).build()

    def test_churn_without_domains_rejected(self):
        with pytest.raises(ConfigurationError, match="domains"):
            _planned_builder(16).domains(build=False).churn(3600.0).build()

    def test_topology_overlay_and_peer_count_conflict(self):
        overlay = Overlay.generate(TopologyConfig(peer_count=8, seed=1))
        with pytest.raises(ConfigurationError, match="not both"):
            SystemBuilder().topology(overlay, peer_count=8)

    def test_topology_overlay_with_generation_knobs_rejected(self):
        """Knobs silently dropped on a prebuilt topology would hide seed sweeps."""
        overlay = Overlay.generate(TopologyConfig(peer_count=8, seed=1))
        with pytest.raises(ConfigurationError, match="not both"):
            SystemBuilder().topology(overlay, seed=9)
        with pytest.raises(ConfigurationError, match="not both"):
            SystemBuilder().topology(TopologyConfig(peer_count=8), average_degree=6)

    def test_protocol_config_and_kwargs_conflict(self):
        with pytest.raises(ConfigurationError, match="not both"):
            SystemBuilder().protocol(ProtocolConfig(), freshness_threshold=0.5)

    def test_protocol_knobs_validated_by_config(self):
        with pytest.raises(ConfigurationError):
            _planned_builder(16).protocol(freshness_threshold=7.0).build()


class TestBuildOutcome:
    def test_build_returns_session_with_domains(self):
        session = _planned_builder().build()
        assert isinstance(session, NetworkSession)
        assert session.planned
        assert session.domains
        assert session.construction_report is not None
        members = set(session.domains) | set(session.system.assignment)
        assert members == set(session.overlay.peer_ids)

    def test_domains_build_false_leaves_network_flat(self):
        session = _planned_builder().domains(build=False).build()
        assert session.domains == {}
        assert session.construction_report is None

    def test_forced_summary_peers_are_respected(self):
        overlay = Overlay.generate(TopologyConfig(peer_count=32, seed=3))
        hub = max(overlay.peer_ids, key=overlay.degree)
        session = (
            SystemBuilder()
            .topology(overlay)
            .planned_content()
            .domains(summary_peers=[hub])
            .seed(3)
            .build()
        )
        assert set(session.domains) == {hub}

    def test_horizon_tracks_schedules(self):
        session = (
            _planned_builder(32)
            .churn(3600.0)
            .modifications(7200.0, 1.0 / 1800.0)
            .build()
        )
        assert session.horizon == 7200.0


class TestLegacyEquivalence:
    """The acceptance bar: session.query must match legacy pose_query exactly."""

    def _legacy_system(self, seed):
        overlay = Overlay.generate(
            TopologyConfig(peer_count=64, average_degree=4.0, seed=seed)
        )
        system = SummaryManagementSystem(overlay, config=ProtocolConfig(), seed=seed)
        system.use_planned_content(matching_fraction=0.1, seed=seed)
        system.build_domains()
        return system

    @pytest.mark.parametrize("seed", [0, 7, 21])
    def test_routing_and_traffic_byte_identical(self, seed):
        session = _planned_builder(seed=seed).build()
        legacy = self._legacy_system(seed)

        originator = session.default_originator()
        for required in (None, 3, 64):
            answer = session.query(originator, required_results=required)
            result = legacy.pose_query(originator, required_results=required)
            assert answer.query_id == result.query_id
            assert answer.results == result.results
            assert answer.total_messages == result.total_messages
            assert answer.routing.flooding_messages == result.flooding_messages
            assert answer.contacted_peers == result.contacted_peers
            assert answer.responding_peers == result.responding_peers
        assert (
            session.system.counter.by_type() == legacy.counter.by_type()
        ), "message accounting diverged between the façade and the legacy path"

    def test_staleness_snapshot_does_not_perturb_ids_or_traffic(self):
        with_staleness = _planned_builder(seed=5).build()
        without = _planned_builder(seed=5).build()
        a = with_staleness.query(include_staleness=True)
        b = without.query(include_staleness=False)
        assert a.staleness is not None and b.staleness is None
        assert a.query_id == b.query_id
        assert a.total_messages == b.total_messages
        assert with_staleness.next_query_id() == without.next_query_id()


class TestQuerySurface:
    def test_query_answer_bundles_everything_planned(self):
        session = _planned_builder().build()
        answer = session.query(required_results=5)
        assert isinstance(answer, QueryAnswer)
        assert answer.results >= 5
        assert answer.staleness is not None
        assert answer.staleness.query_id == answer.query_id
        assert answer.query_messages == answer.total_messages
        assert answer.update_messages == 0
        assert answer.answer is None  # no real content to answer from
        assert answer.posed_at == session.now

    def test_query_many_cycles_originators(self):
        session = _planned_builder().build()
        answers = session.query_many(count=5, required_results=2)
        assert len(answers) == 5
        assert [a.query_id for a in answers] == [0, 1, 2, 3, 4]
        assert len({a.originator for a in answers}) > 1

    def test_query_many_requires_exactly_one_input(self):
        session = _planned_builder().build()
        with pytest.raises(ConfigurationError, match="exactly one"):
            session.query_many()
        with pytest.raises(ConfigurationError, match="exactly one"):
            session.query_many(count=2, queries=[paper_example_query()])

    def test_staleness_passthrough_requires_planned_content(self):
        session = _real_session()
        with pytest.raises(ProtocolError):
            session.staleness()

    def test_explicit_staleness_on_real_content_surfaces_the_error(self):
        """include_staleness=True must not be silently ignored in real mode."""
        session = _real_session()
        with pytest.raises(ProtocolError, match="planned content"):
            session.query(query=paper_example_query(), include_staleness=True)


def _real_session(peer_count=24, seed=4):
    overlay = Overlay.generate(TopologyConfig(peer_count=peer_count, seed=seed))
    databases = build_peer_databases(
        overlay.peer_ids,
        MedicalWorkload(records_per_peer=6, matching_fraction=0.25, seed=seed),
    )
    return (
        SystemBuilder()
        .topology(overlay)
        .background(medical_background_knowledge())
        .protocol(superpeer_fraction=1 / 8)
        .real_content(databases)
        .seed(seed)
        .build()
    )


class TestRealContentSession:
    def test_real_query_carries_approximate_answer(self):
        session = _real_session()
        answer = session.query(query=paper_example_query())
        assert answer.results > 0
        assert answer.staleness is None
        assert answer.answer is not None
        assert not answer.answer.is_empty
        labels = answer.answer.merged_output().get("age", frozenset())
        assert labels  # the example query characterizes ages

    def test_answer_can_be_disabled(self):
        session = _real_session()
        answer = session.query(query=paper_example_query(), include_answer=False)
        assert answer.answer is None

    def test_query_many_over_real_queries(self):
        session = _real_session()
        answers = session.query_many(queries=[paper_example_query()] * 3)
        assert len(answers) == 3
        assert all(a.results > 0 for a in answers)


class TestSimulationAndReports:
    def test_run_until_defaults_to_horizon(self):
        session = _planned_builder(48).churn(3600.0).build()
        events = session.run_until()
        assert events > 0
        assert session.now == 3600.0

    def test_maintenance_report_and_traffic(self):
        session = (
            _planned_builder(48)
            .churn(4 * 3600.0, graceful_fraction=1.0)
            .modifications(4 * 3600.0, 1.0 / 1800.0)
            .build()
        )
        session.run_until()
        report = session.maintenance_report()
        assert isinstance(report, MaintenanceReport)
        assert report.duration_seconds == 4 * 3600.0
        assert report.push_messages > 0
        assert report.update_messages > 0
        assert report.messages_per_node > 0
        traffic = session.traffic()
        assert isinstance(traffic, SessionTraffic)
        assert traffic.update.total_messages == report.update_messages
        session.query(required_results=2)
        assert session.traffic().query.total_messages > 0

    def test_wrapping_an_existing_system(self):
        """Migration path: NetworkSession over a hand-wired engine."""
        overlay = Overlay.generate(TopologyConfig(peer_count=32, seed=2))
        system = SummaryManagementSystem(overlay, seed=2)
        system.use_planned_content(matching_fraction=0.1, seed=2)
        system.build_domains()
        session = NetworkSession(system)
        answer = session.query(required_results=1)
        assert answer.results >= 1
