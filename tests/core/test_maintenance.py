"""Unit tests for push/pull summary maintenance (Section 4.2)."""

import pytest

from repro.core.config import ProtocolConfig
from repro.core.domain import Domain
from repro.core.freshness import Freshness
from repro.core.maintenance import MaintenanceEngine
from repro.database.generator import PatientGenerator
from repro.fuzzy.vocabularies import medical_background_knowledge
from repro.network.messages import MessageType
from repro.saintetiq.hierarchy import SummaryHierarchy


def _domain(partner_count=10, alpha=0.3):
    domain = Domain.create("sp")
    for index in range(partner_count):
        domain.add_partner(f"p{index}", distance=float(index))
    return domain


def _summaries(peer_ids):
    background = medical_background_knowledge(include_categorical=False)
    generator = PatientGenerator(seed=1, background=background)
    result = {}
    for peer_id in peer_ids:
        hierarchy = SummaryHierarchy(background, attributes=["age", "bmi"], owner=peer_id)
        hierarchy.add_records(generator.records(4))
        result[peer_id] = hierarchy
    return result


class TestPushPhase:
    def test_push_marks_stale_and_counts_one_message(self):
        engine = MaintenanceEngine(ProtocolConfig(freshness_threshold=0.5))
        domain = _domain(10)
        due = engine.push_stale(domain, "p0", now=5.0)
        assert not due
        assert domain.cooperation.freshness_of("p0") is Freshness.STALE
        assert engine.counter.count(MessageType.PUSH) == 1
        assert engine.stats.push_messages == 1

    def test_push_triggers_reconciliation_at_threshold(self):
        engine = MaintenanceEngine(ProtocolConfig(freshness_threshold=0.3))
        domain = _domain(10)
        assert not engine.push_stale(domain, "p0")
        assert not engine.push_stale(domain, "p1")
        assert engine.push_stale(domain, "p2")  # 3/10 >= 0.3

    def test_push_from_non_partner_is_ignored(self):
        engine = MaintenanceEngine()
        domain = _domain(3)
        assert not engine.push_stale(domain, "ghost")
        assert engine.counter.count(MessageType.PUSH) == 0

    def test_push_departure_uses_mode_encoding(self):
        engine = MaintenanceEngine()
        domain = _domain(5)
        engine.push_departure(domain, "p0")
        assert domain.cooperation.freshness_of("p0") is Freshness.STALE

    def test_silent_failure_sends_no_message(self):
        engine = MaintenanceEngine()
        domain = _domain(5)
        engine.register_silent_failure(domain, "p0")
        assert engine.counter.total == 0
        assert domain.cooperation.freshness_of("p0") is Freshness.FRESH


class TestReconciliation:
    def test_reconcile_resets_freshness_and_counts_ring_messages(self):
        engine = MaintenanceEngine(ProtocolConfig(freshness_threshold=0.2))
        domain = _domain(10)
        for index in range(3):
            engine.push_stale(domain, f"p{index}")
        record = engine.reconcile(domain, now=100.0)
        assert record.messages == 11  # 10 partners + return hop
        assert domain.old_fraction() == 0.0
        assert engine.stats.reconciliations == 1
        assert engine.counter.count(MessageType.RECONCILIATION) == 11

    def test_reconcile_single_message_accounting_mode(self):
        config = ProtocolConfig(count_reconciliation_ring_hops=False)
        engine = MaintenanceEngine(config)
        domain = _domain(10)
        record = engine.reconcile(domain)
        assert record.messages == 1

    def test_reconcile_removes_unavailable_partners(self):
        engine = MaintenanceEngine()
        domain = _domain(6)
        available = {f"p{i}" for i in range(4)}
        record = engine.reconcile(domain, available_partners=available)
        assert set(record.removed_partners) == {"p4", "p5"}
        assert set(domain.partner_ids) == available

    def test_reconcile_rebuilds_global_summary_from_available_partners(self):
        engine = MaintenanceEngine()
        domain = _domain(4)
        summaries = _summaries(domain.partner_ids)
        available = {"p0", "p1"}
        engine.reconcile(domain, local_summaries=summaries, available_partners=available)
        assert domain.has_global_summary()
        assert domain.coverage() == available

    def test_maybe_reconcile_only_fires_at_threshold(self):
        engine = MaintenanceEngine(ProtocolConfig(freshness_threshold=0.5))
        domain = _domain(4)
        engine.push_stale(domain, "p0")
        assert engine.maybe_reconcile(domain) is None
        engine.push_stale(domain, "p1")
        assert engine.maybe_reconcile(domain) is not None

    def test_reconciliation_history_recorded(self):
        engine = MaintenanceEngine()
        domain = _domain(3)
        engine.reconcile(domain, now=7.0)
        assert len(engine.stats.history) == 1
        assert engine.stats.history[0].time == 7.0
        assert engine.stats.history[0].summary_peer_id == "sp"

    def test_reconciliation_frequency(self):
        engine = MaintenanceEngine()
        domain = _domain(3)
        engine.reconcile(domain)
        engine.reconcile(domain)
        assert engine.stats.reconciliation_frequency(100.0) == pytest.approx(0.02)
        assert engine.stats.reconciliation_frequency(0.0) == 0.0

    def test_update_traffic_summary(self):
        engine = MaintenanceEngine()
        domain = _domain(5)
        engine.push_stale(domain, "p0")
        engine.reconcile(domain)
        traffic = engine.update_traffic()
        assert traffic[MessageType.PUSH] == 1
        assert traffic[MessageType.RECONCILIATION] == 6
