"""Resilient-protocol tests: retries, partitions, reclamation, degraded answers."""

import pytest

from repro.core.session import SystemBuilder
from repro.exceptions import ConfigurationError
from repro.network.faults import (
    DomainFailureEvent,
    FaultPlan,
    FlashCrowdEvent,
    LinkFaults,
    MassacreEvent,
    PartitionEvent,
)
from repro.network.messages import MessageType


def _session(peer_count=32, seed=3, plan=None, **protocol):
    builder = (
        SystemBuilder()
        .topology(peer_count=peer_count, seed=seed)
        .planned_content(hit_rate=0.2)
        .seed(seed)
    )
    if protocol:
        builder.protocol(**protocol)
    if plan is not None:
        builder.faults(plan)
    return builder.build()


def _a_partner(system):
    return next(p for p in system.overlay.peer_ids if p not in system.domains)


class TestBuilderFaults:
    def test_faults_requires_a_plan(self):
        with pytest.raises(ConfigurationError):
            SystemBuilder().faults("not a plan")

    def test_plan_installs_injector_and_events(self):
        plan = FaultPlan(
            seed=1, partitions=[PartitionEvent(at=60.0, heal_at=600.0)]
        )
        session = _session(plan=plan)
        assert session.system.faults is not None
        labels = [event.label for event in session.simulator.pending()]
        assert "partition" in labels
        assert "heal" in labels

    def test_no_plan_means_no_injector(self):
        assert _session().system.faults is None


class TestPushRetries:
    def test_exhausted_push_budget_is_accounted(self):
        plan = FaultPlan(seed=2, link=LinkFaults(drop_probability=1.0))
        session = _session(plan=plan, push_max_retries=3)
        system = session.system
        partner = _a_partner(system)
        before_push = system.maintenance.stats.push_messages

        system._handle_modification(partner)

        faults = system.faults
        assert faults.stats.failed_pushes == 1
        # All 1 + 3 transmissions hit the wire and are charged as PUSH traffic
        # even though none arrived.
        assert system.maintenance.stats.push_messages == before_push + 4
        assert system.counter.retry_total == 3
        assert system.counter.dropped_by_reason()["link loss"] == 4
        assert faults.stats.backoff_seconds > 0
        # The summary peer never heard the push: no reconciliation pressure.
        sp_id = system.assignment[partner]
        assert system.domains[sp_id].cooperation.entry(partner).freshness.is_fresh

    def test_successful_push_without_loss_charges_nothing_extra(self):
        plan = FaultPlan(seed=2, link=LinkFaults(drop_probability=0.0))
        session = _session(plan=plan)
        system = session.system
        partner = _a_partner(system)
        system._handle_modification(partner)
        assert system.counter.retry_total == 0
        assert system.counter.dropped_total == 0


class TestPartitionedQueries:
    @staticmethod
    def _partitioned_session():
        plan = FaultPlan(seed=1, partitions=[PartitionEvent(at=60.0, fraction=0.5)])
        session = _session(peer_count=64, plan=plan)
        session.run_until(120.0)
        assert session.system.faults.partitioned
        return session

    def test_every_domain_is_visited_or_marked_unreachable(self):
        session = self._partitioned_session()
        all_domains = set(session.system.domains)
        for peer_id in session.system.overlay.peer_ids:
            if not session.system.overlay.peer(peer_id).online:
                continue
            answer = session.query(peer_id)
            report = answer.degradation
            assert report is not None
            visited = {o.domain_id for o in answer.routing.domain_outcomes}
            unreachable = set(report.unreachable_domains)
            assert visited | unreachable == all_domains
            assert not visited & unreachable

    def test_unreachable_probes_are_charged_and_bounded(self):
        session = self._partitioned_session()
        system = session.system
        budget = 1 + system.config.query_max_retries
        faults = system.faults
        origin = next(
            p
            for p in system.overlay.peer_ids
            if any(not faults.reachable(p, sp) for sp in system.domains)
        )
        answer = session.query(origin)
        report = answer.degradation
        assert report.probe_messages == budget * len(report.unreachable_domains)
        assert answer.routing.total_messages >= report.probe_messages

    def test_heal_repairs_every_orphan(self):
        plan = FaultPlan(
            seed=1, partitions=[PartitionEvent(at=60.0, fraction=0.5, heal_at=300.0)]
        )
        session = _session(peer_count=64, plan=plan)
        session.run_until(120.0)
        # Force reconciliations mid-partition so far-side partners get dropped.
        for sp_id in list(session.system.domains):
            session.system._run_reconciliation(sp_id)
        session.run_until(400.0)
        system = session.system
        assert not system.faults.partitioned
        for peer_id in system.overlay.peer_ids:
            peer = system.overlay.peer(peer_id)
            if not peer.online or peer_id in system.domains:
                continue
            sp_id = system.assignment.get(peer_id)
            assert sp_id in system.domains
            assert system.domains[sp_id].is_partner(peer_id)
        # Queries come back complete again.
        answer = session.query(_a_partner(system))
        assert answer.degradation.complete


class TestLossyReconciliation:
    def test_missed_ring_hop_keeps_partner_stale_not_evicted(self):
        plan = FaultPlan(seed=6, link=LinkFaults(drop_probability=1.0))
        session = _session(plan=plan, reconciliation_max_retries=1)
        system = session.system
        sp_id = next(iter(system.domains))
        domain = system.domains[sp_id]
        partners_before = set(domain.partner_ids)
        assert partners_before

        system._run_reconciliation(sp_id)

        # Every hop was lost: nobody was reconciled, but nobody fell out of
        # the domain either — they all just stay stale.
        assert set(domain.partner_ids) == partners_before
        for peer_id in partners_before:
            assert domain.cooperation.entry(peer_id).freshness.counts_as_old
        assert system.counter.dropped_by_reason()["link loss"] == 2 * len(
            partners_before
        )


class TestDomainReclamation:
    @staticmethod
    def _reclaim_setup():
        session = _session(peer_count=32, seed=5)
        session.attach_store(None)
        system = session.system
        sp_id = next(iter(system.domains))
        # A reconciliation archives the metadata head (partner roster).
        system._run_reconciliation(sp_id)
        head = system.maintenance.archived_head(sp_id)
        assert head is not None
        assert head["partners"]
        return session, sp_id, [pid for pid, _ in head["partners"]]

    def test_rejoining_summary_peer_reclaims_domain(self):
        session, sp_id, former = self._reclaim_setup()
        system = session.system
        system._handle_departure(sp_id, graceful=False)
        assert sp_id not in system.domains

        sumpeer_before = system.counter.count_types([MessageType.SUMPEER])
        reconciliations_before = system.maintenance.stats.reconciliations
        system._handle_rejoin(sp_id)

        assert sp_id in system.domains
        domain = system.domains[sp_id]
        reclaimed = set(domain.partner_ids)
        assert reclaimed  # its old partners came back
        for peer_id in reclaimed:
            assert peer_id in former
            assert system.assignment[peer_id] == sp_id
            assert system.overlay.peer(peer_id).summary_peer_id == sp_id
        assert system.counter.count_types([MessageType.SUMPEER]) > sumpeer_before
        # Planned-content mode has no local summaries to merge, so the
        # store-backed cold start falls back to a full reconciliation.
        assert system.maintenance.stats.reconciliations == reconciliations_before + 1

    def test_without_store_rejoin_falls_back_to_normal_join(self):
        session = _session(peer_count=32, seed=5)
        system = session.system
        sp_id = next(iter(system.domains))
        system._handle_departure(sp_id, graceful=False)
        system._handle_rejoin(sp_id)
        # No store, no archived head: the peer re-joins as a plain partner.
        assert sp_id not in system.domains
        assert system.assignment.get(sp_id) in system.domains


class TestScheduledAdversities:
    def test_domain_failure_kills_whole_domains(self):
        plan = FaultPlan(seed=7, domain_failures=[DomainFailureEvent(at=60.0, count=1)])
        session = _session(peer_count=64, plan=plan)
        domains_before = set(session.system.domains)
        session.run_until(120.0)
        system = session.system
        dead = domains_before - set(system.domains)
        assert len(dead) == 1
        for sp_id in dead:
            assert not system.overlay.peer(sp_id).online

    def test_massacre_and_rejoin(self):
        plan = FaultPlan(
            seed=8,
            massacres=[MassacreEvent(at=60.0, fraction=0.5, rejoin_after=120.0)],
        )
        session = _session(peer_count=64, plan=plan)
        count_before = len(session.system.domains)
        session.run_until(90.0)
        assert len(session.system.domains) < count_before
        session.run_until(300.0)
        # Victims rejoined (without a store they come back as partners).
        for peer_id in session.system.overlay.peer_ids:
            assert session.system.overlay.peer(peer_id).online

    def test_flash_crowd_brings_everyone_back(self):
        plan = FaultPlan(seed=9, flash_crowds=[FlashCrowdEvent(at=120.0)])
        session = _session(peer_count=32, plan=plan)
        system = session.system
        victims = [_a_partner(system)]
        victims.append(
            next(
                p
                for p in system.overlay.peer_ids
                if p not in system.domains and p != victims[0]
            )
        )
        for peer_id in victims:
            system._handle_departure(peer_id, graceful=False)
        session.run_until(150.0)
        for peer_id in victims:
            assert system.overlay.peer(peer_id).online
            assert system.assignment.get(peer_id) in system.domains


class TestZeroFaultIdentity:
    def test_empty_plan_matches_no_plan_exactly(self):
        with_plan = _session(seed=13, plan=FaultPlan(seed=99))
        without = _session(seed=13)
        for session in (with_plan, without):
            session.run_until(600.0)
        answers_a = with_plan.query_batch(count=10)
        answers_b = without.query_batch(count=10)
        assert (
            with_plan.system.counter.state_payload()
            == without.system.counter.state_payload()
        )
        assert with_plan.system.rng.getstate() == without.system.rng.getstate()
        for a, b in zip(answers_a, answers_b):
            assert a.routing.total_messages == b.routing.total_messages
            assert a.routing.responding_peers == b.routing.responding_peers
            assert a.routing.unreachable_domains == b.routing.unreachable_domains == []
            assert a.staleness == b.staleness
            # The degraded-answer surface exists either way.
            assert a.degradation is not None and b.degradation is not None
            assert a.degradation == b.degradation
