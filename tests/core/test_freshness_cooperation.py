"""Unit tests for freshness values and cooperation lists."""

import pytest

from repro.core.cooperation import CooperationList
from repro.core.freshness import Freshness, FreshnessMode
from repro.exceptions import ProtocolError


class TestFreshness:
    def test_values_match_paper_encoding(self):
        assert Freshness.FRESH == 0
        assert Freshness.STALE == 1
        assert Freshness.UNAVAILABLE == 2

    def test_is_fresh(self):
        assert Freshness.FRESH.is_fresh
        assert not Freshness.STALE.is_fresh

    def test_counts_as_old(self):
        assert not Freshness.FRESH.counts_as_old
        assert Freshness.STALE.counts_as_old
        assert Freshness.UNAVAILABLE.counts_as_old

    def test_departure_encoding_by_mode(self):
        assert FreshnessMode.TWO_BIT.encode_departure() is Freshness.UNAVAILABLE
        assert FreshnessMode.ONE_BIT.encode_departure() is Freshness.STALE


class TestCooperationList:
    def test_add_and_lookup(self):
        cooperation = CooperationList()
        cooperation.add_partner("p1")
        assert cooperation.is_partner("p1")
        assert "p1" in cooperation
        assert len(cooperation) == 1
        assert cooperation.freshness_of("p1") is Freshness.FRESH

    def test_add_with_initial_staleness(self):
        cooperation = CooperationList()
        cooperation.add_partner("p1", freshness=Freshness.STALE)
        assert cooperation.freshness_of("p1") is Freshness.STALE

    def test_remove_partner(self):
        cooperation = CooperationList()
        cooperation.add_partner("p1")
        cooperation.remove_partner("p1")
        assert not cooperation.is_partner("p1")

    def test_remove_unknown_raises(self):
        with pytest.raises(ProtocolError):
            CooperationList().remove_partner("p1")

    def test_entry_unknown_raises(self):
        with pytest.raises(ProtocolError):
            CooperationList().entry("p1")

    def test_mark_stale_and_fresh_views(self):
        cooperation = CooperationList()
        for index in range(4):
            cooperation.add_partner(f"p{index}")
        cooperation.mark_stale("p0")
        cooperation.mark_stale("p1")
        assert set(cooperation.old_partners()) == {"p0", "p1"}
        assert set(cooperation.fresh_partners()) == {"p2", "p3"}

    def test_old_fraction(self):
        cooperation = CooperationList()
        for index in range(4):
            cooperation.add_partner(f"p{index}")
        cooperation.mark_stale("p0")
        assert cooperation.old_fraction() == pytest.approx(0.25)

    def test_old_fraction_empty_list(self):
        assert CooperationList().old_fraction() == 0.0

    def test_needs_reconciliation_threshold(self):
        cooperation = CooperationList()
        for index in range(10):
            cooperation.add_partner(f"p{index}")
        for index in range(3):
            cooperation.mark_stale(f"p{index}")
        assert cooperation.needs_reconciliation(0.3)
        assert not cooperation.needs_reconciliation(0.31)

    def test_needs_reconciliation_empty_list(self):
        assert not CooperationList().needs_reconciliation(0.1)

    def test_reset_all(self):
        cooperation = CooperationList()
        cooperation.add_partner("p1")
        cooperation.mark_stale("p1")
        cooperation.reset_all(now=10.0)
        assert cooperation.freshness_of("p1") is Freshness.FRESH
        assert cooperation.entry("p1").updated_at == 10.0

    def test_departure_one_bit_mode(self):
        cooperation = CooperationList(FreshnessMode.ONE_BIT)
        cooperation.add_partner("p1")
        cooperation.mark_departed("p1")
        assert cooperation.freshness_of("p1") is Freshness.STALE
        assert cooperation.unavailable_partners() == []

    def test_departure_two_bit_mode(self):
        cooperation = CooperationList(FreshnessMode.TWO_BIT)
        cooperation.add_partner("p1")
        cooperation.mark_departed("p1")
        assert cooperation.freshness_of("p1") is Freshness.UNAVAILABLE
        assert cooperation.unavailable_partners() == ["p1"]

    def test_one_bit_mode_collapses_unavailable(self):
        cooperation = CooperationList(FreshnessMode.ONE_BIT)
        cooperation.add_partner("p1")
        cooperation.set_freshness("p1", Freshness.UNAVAILABLE)
        assert cooperation.freshness_of("p1") is Freshness.STALE

    def test_freshness_of_unknown_is_none(self):
        assert CooperationList().freshness_of("ghost") is None

    def test_partner_ids_order(self):
        cooperation = CooperationList()
        cooperation.add_partner("b")
        cooperation.add_partner("a")
        assert cooperation.partner_ids == ["b", "a"]
