"""Unit tests for peer dynamicity handling (Section 4.3)."""

import pytest

from repro.core.config import ProtocolConfig
from repro.core.construction import DomainBuilder
from repro.core.dynamicity import ChurnHandler
from repro.core.freshness import Freshness
from repro.core.maintenance import MaintenanceEngine
from repro.exceptions import ProtocolError
from repro.network.messages import MessageType
from repro.network.metrics import MessageCounter
from repro.network.overlay import Overlay
from repro.network.topology import TopologyConfig


@pytest.fixture
def built_network():
    """An overlay with domains already constructed, plus a churn handler."""
    overlay = Overlay.generate(TopologyConfig(peer_count=48, seed=5))
    config = ProtocolConfig(freshness_threshold=0.3)
    counter = MessageCounter()
    maintenance = MaintenanceEngine(config, counter)
    handler = ChurnHandler(config, counter, maintenance)
    report = DomainBuilder(config).build(overlay, counter=counter)
    return overlay, report.domains, dict(report.assignment), handler, counter


class TestPeerLeaveAndFail:
    def test_graceful_leave_pushes_and_marks_departed(self, built_network):
        overlay, domains, assignment, handler, counter = built_network
        peer_id = next(iter(assignment))
        sp_id = assignment[peer_id]
        before = counter.count(MessageType.PUSH)
        outcome = handler.peer_leave(overlay, domains, assignment, peer_id)
        assert outcome.event == "leave"
        assert outcome.domain_id == sp_id
        assert counter.count(MessageType.PUSH) == before + 1
        assert domains[sp_id].cooperation.freshness_of(peer_id) is Freshness.STALE
        assert not overlay.peer(peer_id).online

    def test_silent_failure_sends_no_message(self, built_network):
        overlay, domains, assignment, handler, counter = built_network
        peer_id = next(iter(assignment))
        sp_id = assignment[peer_id]
        before = counter.count(MessageType.PUSH)
        outcome = handler.peer_fail(overlay, domains, assignment, peer_id)
        assert outcome.event == "fail"
        assert counter.count(MessageType.PUSH) == before
        # The stale descriptions linger: freshness still FRESH until reconciliation.
        assert domains[sp_id].cooperation.freshness_of(peer_id) is Freshness.FRESH
        assert not overlay.peer(peer_id).online
        # The peer is no longer assigned to any live domain.
        assert peer_id not in assignment

    def test_many_departures_signal_reconciliation(self, built_network):
        overlay, domains, assignment, handler, _counter = built_network
        sp_id, domain = max(domains.items(), key=lambda kv: len(kv[1].partner_ids))
        partners = list(domain.partner_ids)
        due = False
        for peer_id in partners:
            outcome = handler.peer_leave(overlay, domains, assignment, peer_id)
            due = due or outcome.reconciliation_due
        assert due


class TestPeerJoin:
    def test_join_through_partner_neighbour(self, built_network):
        overlay, domains, assignment, handler, counter = built_network
        anchors = [p for p in overlay.peer_ids if p in assignment][:2]
        overlay.add_peer("newcomer", anchors, latency_ms=20.0)
        before = counter.count(MessageType.LOCALSUM)
        outcome = handler.peer_join(overlay, domains, assignment, "newcomer")
        assert outcome.new_domain_id in domains
        assert counter.count(MessageType.LOCALSUM) == before + 1
        sp_id = outcome.new_domain_id
        assert domains[sp_id].cooperation.freshness_of("newcomer") is Freshness.STALE
        assert assignment["newcomer"] == sp_id

    def test_rejoin_after_leave(self, built_network):
        overlay, domains, assignment, handler, _counter = built_network
        peer_id = next(iter(assignment))
        handler.peer_leave(overlay, domains, assignment, peer_id)
        # The old entry is still in the cooperation list (stale); rejoining
        # re-registers the peer as a (stale) partner of some domain.
        outcome = handler.peer_join(overlay, domains, assignment, peer_id)
        assert overlay.peer(peer_id).online
        assert outcome.new_domain_id in domains


class TestSummaryPeerDeparture:
    def test_graceful_departure_releases_partners(self, built_network):
        overlay, domains, assignment, handler, counter = built_network
        sp_id, domain = max(domains.items(), key=lambda kv: len(kv[1].partner_ids))
        partners = list(domain.partner_ids)
        outcome = handler.summary_peer_leave(overlay, domains, assignment, sp_id)
        assert outcome.event == "sp_leave"
        assert sp_id not in domains
        assert counter.count(MessageType.RELEASE) == len(partners)
        # Online released partners found a new domain.
        for peer_id in partners:
            if overlay.peer(peer_id).online:
                assert assignment.get(peer_id) in domains

    def test_silent_failure_no_release_messages(self, built_network):
        overlay, domains, assignment, handler, counter = built_network
        sp_id = next(iter(domains))
        outcome = handler.summary_peer_fail(overlay, domains, assignment, sp_id)
        assert outcome.event == "sp_fail"
        assert counter.count(MessageType.RELEASE) == 0
        assert sp_id not in domains

    def test_departure_of_unknown_summary_peer_raises(self, built_network):
        overlay, domains, assignment, handler, _counter = built_network
        with pytest.raises(ProtocolError):
            handler.summary_peer_leave(overlay, domains, assignment, "ghost")
        with pytest.raises(ProtocolError):
            handler.summary_peer_fail(overlay, domains, assignment, "ghost")
