"""Unit tests for summary-based query routing (Section 5.2.1)."""

import pytest

from repro.core.config import ProtocolConfig
from repro.core.content import PlannedContentModel
from repro.core.domain import Domain
from repro.core.freshness import Freshness
from repro.core.routing import QueryRouter, RoutingPolicy
from repro.network.messages import MessageType
from repro.network.overlay import Overlay
from repro.network.topology import TopologyConfig


@pytest.fixture
def domain_and_content():
    """A 20-partner domain with a planned content model (50 % hit rate)."""
    domain = Domain.create("sp")
    peer_ids = [f"p{i}" for i in range(20)]
    for index, peer_id in enumerate(peer_ids):
        domain.add_partner(peer_id, distance=float(index))
    content = PlannedContentModel(peer_ids, matching_fraction=0.5, seed=1)
    return domain, content, peer_ids


class TestRouteInDomain:
    def test_all_policy_contacts_every_relevant_peer(self, domain_and_content):
        domain, content, peer_ids = domain_and_content
        router = QueryRouter()
        outcome = router.route_in_domain(0, domain, content)
        matching = content.plan_query(0)
        assert outcome.relevant_peers == matching
        assert outcome.contacted_peers == matching
        assert outcome.responding_peers == matching
        assert outcome.false_positives == set()
        assert outcome.false_negatives == set()

    def test_message_accounting(self, domain_and_content):
        domain, content, _peer_ids = domain_and_content
        router = QueryRouter()
        outcome = router.route_in_domain(0, domain, content)
        expected = 1 + len(outcome.contacted_peers) + len(outcome.responding_peers)
        assert outcome.messages == expected
        assert router.counter.count(MessageType.QUERY) == 1 + len(outcome.contacted_peers)
        assert router.counter.count(MessageType.QUERY_RESPONSE) == len(
            outcome.responding_peers
        )

    def test_no_summary_peer_hop_option(self, domain_and_content):
        domain, content, _peer_ids = domain_and_content
        router = QueryRouter()
        outcome = router.route_in_domain(
            0, domain, content, charge_summary_peer_hop=False
        )
        assert outcome.messages == len(outcome.contacted_peers) + len(
            outcome.responding_peers
        )

    def test_departed_relevant_peer_is_false_positive(self, domain_and_content):
        domain, content, peer_ids = domain_and_content
        router = QueryRouter()
        victim = next(iter(content.plan_query(0)))
        content.mark_departed(victim)
        online = set(peer_ids) - {victim}
        outcome = router.route_in_domain(0, domain, content, online_peers=online)
        assert victim in outcome.contacted_peers
        assert victim in outcome.false_positives
        assert victim not in outcome.responding_peers
        assert outcome.false_positive_rate > 0

    def test_precision_policy_excludes_stale_partners(self, domain_and_content):
        domain, content, _peer_ids = domain_and_content
        router = QueryRouter()
        stale_peer = next(iter(content.plan_query(0)))
        domain.cooperation.mark_stale(stale_peer)
        outcome = router.route_in_domain(
            0, domain, content, policy=RoutingPolicy.PRECISION
        )
        assert stale_peer not in outcome.contacted_peers
        # The excluded peer still matches: it becomes a false negative.
        assert stale_peer in outcome.false_negatives
        assert outcome.false_positives == set()

    def test_recall_policy_includes_old_partners(self, domain_and_content):
        domain, content, _peer_ids = domain_and_content
        router = QueryRouter()
        non_matching = next(
            p for p in domain.partner_ids if p not in content.plan_query(0)
        )
        domain.cooperation.mark_stale(non_matching)
        outcome = router.route_in_domain(
            0, domain, content, policy=RoutingPolicy.RECALL
        )
        assert non_matching in outcome.contacted_peers
        assert non_matching in outcome.false_positives
        assert outcome.false_negatives == set()

    def test_described_partners_restrict_relevance(self, domain_and_content):
        domain, content, _peer_ids = domain_and_content
        router = QueryRouter()
        matching = content.plan_query(0)
        described = set(list(matching)[:1])
        outcome = router.route_in_domain(
            0, domain, content, described_partners=described
        )
        assert outcome.relevant_peers == described
        # Matching peers outside the described set are false negatives.
        assert (matching - described) <= outcome.false_negatives

    def test_rates_zero_when_nothing_contacted(self):
        domain = Domain.create("sp")
        domain.add_partner("p0", distance=1.0)
        content = PlannedContentModel(["p0"], matching_fraction=0.0)
        router = QueryRouter()
        outcome = router.route_in_domain(0, domain, content)
        assert outcome.false_positive_rate == 0.0
        assert outcome.false_negative_rate == 0.0
        assert outcome.results == 0


class TestFloodingCost:
    def test_flooding_cost_counts_requests_and_probes(self):
        overlay = Overlay.generate(TopologyConfig(peer_count=30, seed=2))
        domain = Domain.create(overlay.peer_ids[0])
        for peer_id in overlay.peer_ids[1:6]:
            domain.add_partner(peer_id, distance=1.0)
        router = QueryRouter(ProtocolConfig(flooding_ttl=3))
        cost = router.flooding_cost(
            overlay,
            domain,
            responding_peers=overlay.peer_ids[1:3],
            originator=overlay.peer_ids[10],
            known_summary_peers=["spX", "spY"],
            target_domains=1,
        )
        assert cost >= 3  # at least the flood requests
        assert router.counter.count(MessageType.FLOOD_REQUEST) == 3
        assert router.counter.count(MessageType.FLOOD_QUERY) >= 1

    def test_flooding_cost_zero_known_summary_peers(self):
        overlay = Overlay.generate(TopologyConfig(peer_count=20, seed=3))
        domain = Domain.create(overlay.peer_ids[0])
        router = QueryRouter()
        cost = router.flooding_cost(
            overlay, domain, responding_peers=[], originator=overlay.peer_ids[1]
        )
        assert cost >= 1


class TestSetMatchingEquivalence:
    """Set-intersection responding peers == the per-peer reference loop."""

    def test_matching_among_equals_reference_loop(self, domain_and_content):
        _domain, content, peer_ids = domain_and_content
        content.mark_departed(peer_ids[3])
        subset = set(peer_ids[::2])
        for query_id in range(4):
            expected = {
                peer_id
                for peer_id in subset
                if content.truly_matching(query_id, peer_id)
            }
            assert content.matching_among(query_id, subset) == expected

    @pytest.mark.parametrize("policy", list(RoutingPolicy))
    def test_route_outcomes_identical_across_paths(self, domain_and_content, policy):
        domain, content, peer_ids = domain_and_content
        content.mark_departed(peer_ids[3])
        domain.cooperation.mark_stale(peer_ids[7])
        online = set(peer_ids) - {peer_ids[5]}

        fast = QueryRouter()
        reference = QueryRouter()
        reference.use_set_matching = False
        for query_id in range(5):
            via_sets = fast.route_in_domain(
                query_id, domain, content, policy=policy, online_peers=online
            )
            via_loop = reference.route_in_domain(
                query_id, domain, content, policy=policy, online_peers=online
            )
            assert via_sets == via_loop
        assert fast.counter.state_payload() == reference.counter.state_payload()


class TestFloodingCostCache:
    """Cached extra-domain neighbour counts == the uncached reference."""

    def _setup(self):
        overlay = Overlay.generate(TopologyConfig(peer_count=30, seed=2))
        domain = Domain.create(overlay.peer_ids[0])
        for peer_id in overlay.peer_ids[1:6]:
            domain.add_partner(peer_id, distance=1.0)
        kwargs = dict(
            responding_peers=overlay.peer_ids[1:4],
            originator=overlay.peer_ids[10],
            known_summary_peers=["spX", "spY"],
            target_domains=1,
        )
        return overlay, domain, kwargs

    def test_cached_cost_equals_reference(self):
        overlay, domain, kwargs = self._setup()
        cached = QueryRouter()
        reference = QueryRouter()
        reference.flooding_cache_enabled = False
        for _ in range(3):
            assert cached.flooding_cost(
                overlay, domain, **kwargs
            ) == reference.flooding_cost(overlay, domain, **kwargs)
        assert cached.counter.state_payload() == reference.counter.state_payload()

    def test_repeat_calls_hit_the_cache(self):
        overlay, domain, kwargs = self._setup()
        router = QueryRouter()
        first = router.flooding_cost(overlay, domain, **kwargs)
        entries = dict(router._flood_cache)
        assert entries, "the first call must populate the cache"
        assert router.flooding_cost(overlay, domain, **kwargs) == first
        assert router._flood_cache == entries, "a repeat call must not recompute"

    def test_overlay_mutation_invalidates(self):
        overlay, domain, kwargs = self._setup()
        router = QueryRouter()
        router.flooding_cost(overlay, domain, **kwargs)
        version = overlay.version
        # Removing a peer rewires neighbourhoods: cached counts are stale now.
        overlay.remove_peer(overlay.peer_ids[-1])
        assert overlay.version > version
        reference = QueryRouter()
        reference.flooding_cache_enabled = False
        assert router.flooding_cost(
            overlay, domain, **kwargs
        ) == reference.flooding_cost(overlay, domain, **kwargs)

    def test_status_flip_invalidates(self):
        overlay, domain, kwargs = self._setup()
        router = QueryRouter()
        router.flooding_cost(overlay, domain, **kwargs)
        version = overlay.version
        peer = overlay.peer(overlay.peer_ids[10])
        peer.online = not peer.online
        assert overlay.version > version

    def test_domain_membership_mutation_invalidates(self):
        overlay, domain, kwargs = self._setup()
        router = QueryRouter()
        router.flooding_cost(overlay, domain, **kwargs)
        # Absorbing the originator into the domain shrinks its outside set.
        domain.add_partner(kwargs["originator"], distance=1.0)
        reference = QueryRouter()
        reference.flooding_cache_enabled = False
        assert router.flooding_cost(
            overlay, domain, **kwargs
        ) == reference.flooding_cost(overlay, domain, **kwargs)
