"""Unit tests for the content models."""

import pytest

from repro.core.content import PlannedContentModel, SummaryContentModel
from repro.database.engine import LocalDatabase
from repro.database.query import Comparison, SelectionQuery
from repro.database.schema import patient_schema
from repro.exceptions import ConfigurationError
from repro.querying.proposition import Clause, Proposition
from repro.querying.selection import select_summaries


class TestPlannedContentModel:
    def test_matching_fraction_respected(self):
        peers = [f"p{i}" for i in range(100)]
        model = PlannedContentModel(peers, matching_fraction=0.1, seed=1)
        assert len(model.plan_query(0)) == 10

    def test_plan_is_stable_per_query(self):
        model = PlannedContentModel([f"p{i}" for i in range(50)], seed=2)
        assert model.plan_query(7) == model.plan_query(7)

    def test_different_queries_can_differ(self):
        model = PlannedContentModel([f"p{i}" for i in range(200)], seed=3)
        assert model.plan_query(0) != model.plan_query(1)

    def test_truly_matching_follows_plan(self):
        model = PlannedContentModel([f"p{i}" for i in range(30)], seed=4)
        matching = model.plan_query(0)
        for peer in matching:
            assert model.truly_matching(0, peer)
        non_matching = set(f"p{i}" for i in range(30)) - matching
        assert not any(model.truly_matching(0, p) for p in non_matching)

    def test_departed_peer_stops_matching(self):
        model = PlannedContentModel([f"p{i}" for i in range(30)], seed=5)
        peer = next(iter(model.plan_query(0)))
        model.mark_departed(peer)
        assert not model.truly_matching(0, peer)
        model.mark_rejoined(peer)
        assert model.truly_matching(0, peer)

    def test_modification_flags(self):
        model = PlannedContentModel(["p0", "p1"], seed=6)
        model.mark_modified("p0")
        assert model.is_modified("p0")
        model.clear_modification("p0")
        assert not model.is_modified("p0")

    def test_relevant_partners_restricted_to_scope(self):
        model = PlannedContentModel([f"p{i}" for i in range(40)], seed=7)
        matching = model.plan_query(0)
        scope = set(list(matching)[:2]) | {"p_not_matching"}
        relevant = model.relevant_partners(0, scope, None, None)
        assert relevant == set(list(matching)[:2])

    def test_invalid_fraction_raises(self):
        with pytest.raises(ConfigurationError):
            PlannedContentModel(["p0"], matching_fraction=2.0)

    def test_zero_fraction(self):
        model = PlannedContentModel([f"p{i}" for i in range(10)], matching_fraction=0.0)
        assert model.plan_query(0) == set()


class TestSummaryContentModel:
    @pytest.fixture
    def setup(self, background):
        database = LocalDatabase(background=background)
        database.create_relation(
            "patient",
            patient_schema(),
            [{"id": "t1", "age": 15, "sex": "female", "bmi": 16, "disease": "anorexia"}],
        )
        empty = LocalDatabase(background=background)
        empty.create_relation("patient", patient_schema(), [])
        queries = {}
        model = SummaryContentModel(queries, {"match": database, "nomatch": empty})
        return model, queries

    def test_truly_matching_uses_database_ground_truth(self, setup):
        model, queries = setup
        query = SelectionQuery("patient", [Comparison("disease", "=", "anorexia")])
        model.register_query(0, query)
        assert model.truly_matching(0, "match")
        assert not model.truly_matching(0, "nomatch")
        assert not model.truly_matching(0, "unknown-peer")

    def test_unknown_query_never_matches(self, setup):
        model, _queries = setup
        assert not model.truly_matching(99, "match")

    def test_relevant_partners_from_global_summary(self, setup, example_hierarchy):
        model, _queries = setup
        proposition = Proposition([Clause("bmi", ["underweight"])])
        # sanity: the hierarchy does select something for this proposition
        assert not select_summaries(example_hierarchy, proposition).is_empty
        relevant = model.relevant_partners(
            0, {"peer-a", "peer-b"}, example_hierarchy, proposition
        )
        assert relevant == {"peer-a"}

    def test_relevant_partners_without_summary_is_empty(self, setup):
        model, _queries = setup
        assert model.relevant_partners(0, {"p"}, None, None) == set()
