"""Byte-identity of the batched absorb path against per-record absorption.

The mapping service's default path groups weighted occurrences per cell and
folds each cell's bookkeeping once (``Cell.absorb_batch`` /
``StatisticsBundle.add_records``).  These tests assert *exact* float equality
— not approx — against the per-record reference: the batch form must take the
same floating-point rounding path, or checkpoints and Table-3 fingerprints
would drift depending on an internal flag.
"""

import pytest

from repro.database.generator import PatientGenerator
from repro.fuzzy.linguistic import Descriptor
from repro.saintetiq.cell import Cell, make_cell_key
from repro.saintetiq.mapping import MappingService, map_records_reference
from repro.saintetiq.stats import StatisticsBundle


def _assert_cells_byte_identical(left, right):
    assert list(left) == list(right)  # same cells, same creation order
    for key in left:
        a, b = left[key], right[key]
        assert a.tuple_count == b.tuple_count
        assert a.grades == b.grades
        assert list(a.grades) == list(b.grades)
        assert a.statistics.as_dict() == b.statistics.as_dict()
        assert a.statistics.attributes == b.statistics.attributes
        assert a.peers == b.peers


class TestStatisticsBatch:
    def test_add_records_equals_sequential_add_record(self):
        records = [r.as_dict() for r in PatientGenerator(seed=3).relation(100)]
        weights = [0.25, 1.0, 0.5, 0.125] * 25
        sequential = StatisticsBundle()
        for record, weight in zip(records, weights):
            sequential.add_record(record, weight)
        batched = StatisticsBundle()
        batched.add_records(list(zip(records, weights)))
        assert batched.as_dict() == sequential.as_dict()
        assert batched.attributes == sequential.attributes

    def test_non_positive_weights_are_dropped(self):
        bundle = StatisticsBundle()
        bundle.add_records([({"age": 40}, 0.0), ({"age": 50}, -1.0)])
        assert bundle.as_dict() == {}

    def test_non_numeric_and_bool_values_are_skipped(self):
        bundle = StatisticsBundle()
        bundle.add_records([({"age": 40, "sex": "F", "flag": True}, 1.0)])
        assert bundle.attributes == ["age"]


class TestCellBatch:
    def _key(self):
        return make_cell_key(
            [Descriptor("age", "young"), Descriptor("bmi", "normal")]
        )

    def test_absorb_batch_equals_absorb_record_loop(self):
        key = self._key()
        grades_a = {Descriptor("age", "young"): 0.7, Descriptor("bmi", "normal"): 1.0}
        grades_b = {Descriptor("age", "young"): 0.3}
        entries = [
            ({"age": 20, "bmi": 20.0}, 0.7, grades_a),
            ({"age": 22, "bmi": 21.5}, 0.3, grades_b),
            ({"age": 25, "bmi": 19.0}, 0.0, grades_b),  # dropped by both paths
        ]
        reference = Cell(key=key)
        for record, weight, grades in entries:
            reference.absorb_record(record, weight, grades, peer="p1")
        batched = Cell(key=key)
        batched.absorb_batch(entries, peer="p1")
        assert batched.tuple_count == reference.tuple_count
        assert batched.grades == reference.grades
        assert list(batched.grades) == list(reference.grades)
        assert batched.statistics.as_dict() == reference.statistics.as_dict()
        assert batched.peers == reference.peers

    def test_all_dropped_batch_leaves_cell_untouched(self):
        cell = Cell(key=self._key())
        cell.absorb_batch([({"age": 20, "bmi": 20.0}, 0.0, {})], peer="p1")
        assert cell.tuple_count == 0.0
        assert cell.grades == {}
        assert cell.peers == set()


class TestMappingBatchAbsorb:
    @pytest.fixture
    def records(self):
        return [r.as_dict() for r in PatientGenerator(seed=17).relation(400)]

    def test_batch_flag_paths_are_byte_identical(self, background, records):
        batched = MappingService(background).map_records(records, peer="p1")
        per_record = MappingService(background, batch_absorb=False).map_records(
            records, peer="p1"
        )
        _assert_cells_byte_identical(batched, per_record)

    def test_batch_path_matches_reference_mapping(self, background, records):
        service = MappingService(background)
        batched = service.map_records(records, peer="p1")
        reference = map_records_reference(service, records, peer="p1")
        # The reference path has no memoization, so cell *contents* must agree
        # exactly even though the expansion work differs.
        _assert_cells_byte_identical(batched, reference)
