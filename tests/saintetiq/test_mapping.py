"""Unit tests for the mapping service (Tables 1 and 2 of the paper)."""

import pytest

from repro.exceptions import BackgroundKnowledgeError
from repro.fuzzy.linguistic import Descriptor
from repro.saintetiq.mapping import MappingService


class TestMapRecord:
    def test_crisp_record_maps_to_single_cell(self, mapping_service):
        results = mapping_service.map_record({"age": 15, "bmi": 17})
        assert len(results) == 1
        key, weight, grades = results[0]
        assert weight == 1.0
        assert {d.label for d in key} == {"young", "underweight"}

    def test_fuzzy_record_maps_to_two_cells(self, mapping_service):
        """The paper's t2 (age 20, bmi 20) lands in (young, normal) and (adult, normal)."""
        results = mapping_service.map_record({"age": 20, "bmi": 20})
        weights = {frozenset(d.label for d in key): weight for key, weight, _ in results}
        assert weights[frozenset({"young", "normal"})] == pytest.approx(0.7)
        assert weights[frozenset({"adult", "normal"})] == pytest.approx(0.3)

    def test_missing_attribute_maps_to_nothing(self, mapping_service):
        assert mapping_service.map_record({"age": 15}) == []

    def test_none_value_maps_to_nothing(self, mapping_service):
        assert mapping_service.map_record({"age": 15, "bmi": None}) == []

    def test_out_of_domain_value_maps_to_nothing(self, mapping_service):
        assert mapping_service.map_record({"age": 15, "bmi": 500}) == []

    def test_grades_carried_per_descriptor(self, mapping_service):
        results = mapping_service.map_record({"age": 20, "bmi": 20})
        for _key, _weight, grades in results:
            assert grades[Descriptor("bmi", "normal")] == 1.0


class TestMapRecords:
    def test_paper_table2(self, paper_cells):
        """Exactly the three cells of Table 2 with the paper's tuple counts."""
        assert len(paper_cells) == 3
        by_labels = {
            frozenset(cell.describe().values()): cell for cell in paper_cells.values()
        }
        assert by_labels[frozenset({"young", "underweight"})].tuple_count == pytest.approx(2.0)
        assert by_labels[frozenset({"young", "normal"})].tuple_count == pytest.approx(0.7)
        assert by_labels[frozenset({"adult", "normal"})].tuple_count == pytest.approx(0.3)

    def test_adult_grade_is_maximum_of_tuple_memberships(self, paper_cells):
        """0.3/adult in cell c3, as stated in Section 3.2.1."""
        for cell in paper_cells.values():
            if cell.describe().get("age") == "adult":
                assert cell.grades[Descriptor("age", "adult")] == pytest.approx(0.3)

    def test_peer_extent_tagging(self, paper_cells):
        assert all(cell.peers == {"peer-a"} for cell in paper_cells.values())

    def test_total_mass_preserved(self, mapping_service, paper_records):
        cells = mapping_service.map_records(paper_records)
        total = sum(cell.tuple_count for cell in cells.values())
        assert total == pytest.approx(len(paper_records))


class TestConfiguration:
    def test_attribute_restriction(self, numeric_background):
        service = MappingService(numeric_background, attributes=["age"])
        results = service.map_record({"age": 15})
        assert len(results) == 1

    def test_unknown_attribute_raises(self, numeric_background):
        with pytest.raises(BackgroundKnowledgeError):
            MappingService(numeric_background, attributes=["height"])

    def test_empty_attribute_list_raises(self, numeric_background):
        with pytest.raises(BackgroundKnowledgeError):
            MappingService(numeric_background, attributes=[])

    def test_grid_size(self, mapping_service):
        assert mapping_service.grid_size() == 16

    def test_threshold_prunes_weak_descriptors(self, numeric_background):
        service = MappingService(
            numeric_background, attributes=["age", "bmi"], threshold=0.5
        )
        results = service.map_record({"age": 20, "bmi": 20})
        # The 0.3/adult combination is pruned by the 0.5 alpha-cut.
        labels = [frozenset(d.label for d in key) for key, _w, _g in results]
        assert frozenset({"adult", "normal"}) not in labels


class TestBatchMapping:
    """The memoized batch path of ``map_records`` matches per-record mapping."""

    def test_batch_equals_per_record_on_generated_workload(self, background):
        from repro.database.generator import PatientGenerator
        from repro.saintetiq.mapping import map_records_reference

        service = MappingService(background)
        records = [r.as_dict() for r in PatientGenerator(seed=11).relation(300)]
        batched = service.map_records(records, peer="p1")
        reference = map_records_reference(service, records, peer="p1")
        assert set(batched) == set(reference)
        for key, cell in batched.items():
            assert cell.tuple_count == pytest.approx(reference[key].tuple_count)
            assert cell.grades == reference[key].grades
            assert cell.statistics.get("age").total == pytest.approx(
                reference[key].statistics.get("age").total
            )
            assert cell.peers == reference[key].peers

    def test_repeated_values_hit_the_memo(self, mapping_service):
        """Identical records fold into one cell set, fuzzified once per value."""
        calls = {"count": 0}
        original = mapping_service._fuzzify_attribute

        def counting(variable, value):
            calls["count"] += 1
            return original(variable, value)

        mapping_service._fuzzify_attribute = counting
        try:
            records = [{"age": 15, "bmi": 17}] * 50
            cells = mapping_service.map_records(records)
        finally:
            del mapping_service._fuzzify_attribute
        # Two attributes, one distinct value each: two fuzzifications total.
        assert calls["count"] == 2
        assert sum(cell.tuple_count for cell in cells.values()) == pytest.approx(50)

    def test_unmappable_records_are_skipped_in_batch(self, mapping_service):
        records = [
            {"age": 15, "bmi": 17},
            {"age": None, "bmi": 17},   # missing value
            {"bmi": 17},                # missing attribute
            {"age": 500, "bmi": 17},    # outside the BK support
        ]
        cells = mapping_service.map_records(records)
        assert sum(cell.tuple_count for cell in cells.values()) == pytest.approx(1)
