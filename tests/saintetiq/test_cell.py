"""Unit tests for grid cells."""

import pytest

from repro.exceptions import SummaryError
from repro.fuzzy.linguistic import Descriptor
from repro.saintetiq.cell import Cell, make_cell_key


def _key(*pairs):
    return make_cell_key(Descriptor(attribute, label) for attribute, label in pairs)


class TestMakeCellKey:
    def test_canonical_order(self):
        first = _key(("bmi", "normal"), ("age", "young"))
        second = _key(("age", "young"), ("bmi", "normal"))
        assert first == second
        assert first[0].attribute == "age"

    def test_duplicate_attribute_raises(self):
        with pytest.raises(SummaryError):
            _key(("age", "young"), ("age", "adult"))

    def test_empty_key_raises(self):
        with pytest.raises(SummaryError):
            make_cell_key([])


class TestCell:
    def test_absorb_record_accumulates_count(self):
        key = _key(("age", "young"), ("bmi", "normal"))
        cell = Cell(key=key)
        grades = {Descriptor("age", "young"): 0.7, Descriptor("bmi", "normal"): 1.0}
        cell.absorb_record({"age": 20, "bmi": 20}, 0.7, grades, peer="p1")
        cell.absorb_record({"age": 21, "bmi": 21}, 0.3, grades, peer="p2")
        assert cell.tuple_count == pytest.approx(1.0)
        assert cell.peers == {"p1", "p2"}

    def test_grades_keep_maximum(self):
        key = _key(("age", "young"),)
        cell = Cell(key=key)
        cell.absorb_record({"age": 20}, 0.7, {Descriptor("age", "young"): 0.7})
        cell.absorb_record({"age": 15}, 1.0, {Descriptor("age", "young"): 1.0})
        assert cell.grades[Descriptor("age", "young")] == 1.0

    def test_zero_weight_is_ignored(self):
        cell = Cell(key=_key(("age", "young"),))
        cell.absorb_record({"age": 20}, 0.0, {})
        assert cell.tuple_count == 0.0

    def test_statistics_collected(self):
        cell = Cell(key=_key(("age", "young"),))
        cell.absorb_record({"age": 20}, 1.0, {Descriptor("age", "young"): 1.0})
        cell.absorb_record({"age": 10}, 1.0, {Descriptor("age", "young"): 1.0})
        stats = cell.statistics.get("age")
        assert stats.minimum == 10
        assert stats.maximum == 20

    def test_label_of(self):
        cell = Cell(key=_key(("age", "young"), ("bmi", "normal")))
        assert cell.label_of("age") == "young"
        assert cell.label_of("bmi") == "normal"
        assert cell.label_of("sex") is None

    def test_describe(self):
        cell = Cell(key=_key(("age", "young"), ("bmi", "normal")))
        assert cell.describe() == {"age": "young", "bmi": "normal"}

    def test_merge_same_key(self):
        key = _key(("age", "young"),)
        first = Cell(key=key)
        second = Cell(key=key)
        first.absorb_record({"age": 20}, 0.5, {Descriptor("age", "young"): 0.5}, "p1")
        second.absorb_record({"age": 15}, 1.0, {Descriptor("age", "young"): 1.0}, "p2")
        first.merge(second)
        assert first.tuple_count == pytest.approx(1.5)
        assert first.peers == {"p1", "p2"}
        assert first.grades[Descriptor("age", "young")] == 1.0

    def test_merge_different_key_raises(self):
        first = Cell(key=_key(("age", "young"),))
        second = Cell(key=_key(("age", "adult"),))
        with pytest.raises(SummaryError):
            first.merge(second)

    def test_copy_is_independent(self):
        cell = Cell(key=_key(("age", "young"),))
        cell.absorb_record({"age": 20}, 1.0, {Descriptor("age", "young"): 1.0}, "p1")
        clone = cell.copy()
        clone.absorb_record({"age": 21}, 1.0, {Descriptor("age", "young"): 1.0}, "p2")
        assert cell.tuple_count == 1.0
        assert clone.tuple_count == 2.0
        assert cell.peers == {"p1"}

    def test_attributes_and_descriptors(self):
        cell = Cell(key=_key(("age", "young"), ("bmi", "normal")))
        assert cell.attributes == ("age", "bmi")
        assert Descriptor("bmi", "normal") in cell.descriptors
