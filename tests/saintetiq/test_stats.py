"""Unit tests for attribute statistics."""

import pytest

from repro.saintetiq.stats import AttributeStatistics, StatisticsBundle


class TestAttributeStatistics:
    def test_empty_statistics(self):
        stats = AttributeStatistics()
        assert stats.mean is None
        assert stats.std is None
        assert stats.minimum is None

    def test_single_observation(self):
        stats = AttributeStatistics()
        stats.add(10.0)
        assert stats.mean == 10.0
        assert stats.std == 0.0
        assert stats.minimum == 10.0
        assert stats.maximum == 10.0

    def test_mean_and_variance(self):
        stats = AttributeStatistics()
        for value in [2.0, 4.0, 6.0, 8.0]:
            stats.add(value)
        assert stats.mean == pytest.approx(5.0)
        assert stats.variance == pytest.approx(5.0)

    def test_weighted_observations(self):
        stats = AttributeStatistics()
        stats.add(10.0, weight=0.5)
        stats.add(20.0, weight=0.5)
        assert stats.count == pytest.approx(1.0)
        assert stats.mean == pytest.approx(15.0)

    def test_zero_weight_is_ignored(self):
        stats = AttributeStatistics()
        stats.add(10.0, weight=0.0)
        assert stats.count == 0.0
        assert stats.mean is None

    def test_merge(self):
        first = AttributeStatistics()
        second = AttributeStatistics()
        first.add(1.0)
        first.add(2.0)
        second.add(3.0)
        first.merge(second)
        assert first.count == 3
        assert first.mean == pytest.approx(2.0)
        assert first.minimum == 1.0
        assert first.maximum == 3.0

    def test_merge_with_empty(self):
        stats = AttributeStatistics()
        stats.add(5.0)
        stats.merge(AttributeStatistics())
        assert stats.count == 1

    def test_copy_is_independent(self):
        stats = AttributeStatistics()
        stats.add(5.0)
        clone = stats.copy()
        clone.add(100.0)
        assert stats.count == 1
        assert clone.count == 2

    def test_as_dict(self):
        stats = AttributeStatistics()
        stats.add(5.0)
        payload = stats.as_dict()
        assert payload["count"] == 1
        assert payload["mean"] == 5.0

    def test_variance_never_negative(self):
        stats = AttributeStatistics()
        # Numerically tricky: many identical large values.
        for _ in range(100):
            stats.add(1e9)
        assert stats.variance >= 0.0


class TestStatisticsBundle:
    def test_add_record_tracks_numeric_attributes_only(self):
        bundle = StatisticsBundle()
        bundle.add_record({"age": 20, "sex": "female", "flag": True})
        assert bundle.attributes == ["age"]

    def test_get_missing_attribute(self):
        assert StatisticsBundle().get("age") is None

    def test_merge_bundles(self):
        first = StatisticsBundle()
        second = StatisticsBundle()
        first.add_record({"age": 10})
        second.add_record({"age": 30})
        first.merge(second)
        assert first.get("age").mean == pytest.approx(20.0)

    def test_copy_is_independent(self):
        bundle = StatisticsBundle()
        bundle.add_record({"age": 10})
        clone = bundle.copy()
        clone.add_record({"age": 30})
        assert bundle.get("age").count == 1
        assert clone.get("age").count == 2

    def test_as_dict(self):
        bundle = StatisticsBundle()
        bundle.add_record({"age": 10, "bmi": 20})
        payload = bundle.as_dict()
        assert set(payload) == {"age", "bmi"}
