"""Unit tests for summary nodes."""

import pytest

from repro.exceptions import SummaryError
from repro.fuzzy.linguistic import Descriptor
from repro.saintetiq.cell import Cell, make_cell_key
from repro.saintetiq.summary import Summary, summary_from_cells


def _cell(labels, count=1.0, peers=()):
    """Helper: a populated cell from {attribute: label} with a given count."""
    key = make_cell_key(Descriptor(a, l) for a, l in labels.items())
    cell = Cell(key=key)
    grades = {Descriptor(a, l): 1.0 for a, l in labels.items()}
    record = {a: 0.0 for a in labels}
    cell.absorb_record(record, count, grades)
    for peer in peers:
        cell.peers.add(peer)
    return cell


class TestSummaryStructure:
    def test_new_summary_is_leaf(self):
        assert Summary().is_leaf

    def test_add_and_remove_child(self):
        parent, child = Summary(), Summary()
        parent.add_child(child)
        assert not parent.is_leaf
        assert child.parent is parent
        parent.remove_child(child)
        assert parent.is_leaf
        assert child.parent is None

    def test_iter_subtree_and_leaves(self):
        root = Summary()
        left, right = Summary(), Summary()
        grandchild = Summary()
        root.add_child(left)
        root.add_child(right)
        left.add_child(grandchild)
        assert len(list(root.iter_subtree())) == 4
        assert set(id(s) for s in root.leaves()) == {id(grandchild), id(right)}

    def test_depth(self):
        root = Summary()
        assert root.depth() == 0
        child = Summary()
        root.add_child(child)
        assert root.depth() == 1
        child.add_child(Summary())
        assert root.depth() == 2

    def test_unique_node_ids(self):
        assert Summary().node_id != Summary().node_id


class TestIntentExtent:
    def test_intent_unions_labels(self):
        summary = summary_from_cells(
            [
                _cell({"age": "young", "bmi": "normal"}),
                _cell({"age": "adult", "bmi": "normal"}),
            ]
        )
        assert summary.intent["age"] == frozenset({"young", "adult"})
        assert summary.intent["bmi"] == frozenset({"normal"})

    def test_tuple_and_cell_count(self):
        summary = summary_from_cells(
            [_cell({"age": "young"}, count=2.0), _cell({"age": "adult"}, count=0.5)]
        )
        assert summary.tuple_count == pytest.approx(2.5)
        assert summary.cell_count == 2

    def test_peer_extent(self):
        summary = summary_from_cells(
            [
                _cell({"age": "young"}, peers=["p1", "p2"]),
                _cell({"age": "adult"}, peers=["p2", "p3"]),
            ]
        )
        assert summary.peer_extent == {"p1", "p2", "p3"}

    def test_absorb_cell_merges_same_key(self):
        summary = Summary()
        summary.absorb_cell(_cell({"age": "young"}, count=1.0))
        summary.absorb_cell(_cell({"age": "young"}, count=2.0))
        assert summary.cell_count == 1
        assert summary.tuple_count == pytest.approx(3.0)

    def test_statistics_aggregate(self):
        first = _cell({"age": "young"})
        second = _cell({"age": "adult"})
        summary = summary_from_cells([first, second])
        assert summary.statistics().get("age").count == pytest.approx(2.0)

    def test_labels_of_missing_attribute(self):
        summary = summary_from_cells([_cell({"age": "young"})])
        assert summary.labels_of("bmi") == frozenset()

    def test_describe(self):
        summary = summary_from_cells(
            [_cell({"age": "young"}), _cell({"age": "adult"})]
        )
        assert summary.describe() == {"age": ["adult", "young"]}

    def test_empty_summary_from_cells_raises(self):
        with pytest.raises(SummaryError):
            summary_from_cells([])


class TestPartialOrder:
    def test_covers_subset_of_cells(self):
        child = summary_from_cells([_cell({"age": "young"})])
        parent = summary_from_cells(
            [_cell({"age": "young"}), _cell({"age": "adult"})]
        )
        assert parent.covers(child)
        assert not child.covers(parent)

    def test_recompute_from_children(self):
        parent = Summary()
        parent.add_child(summary_from_cells([_cell({"age": "young"}, count=1.0)]))
        parent.add_child(summary_from_cells([_cell({"age": "adult"}, count=2.0)]))
        parent.recompute_from_children()
        assert parent.cell_count == 2
        assert parent.tuple_count == pytest.approx(3.0)

    def test_copy_subtree_is_deep(self):
        root = summary_from_cells([_cell({"age": "young"})])
        child = summary_from_cells([_cell({"age": "young"})])
        root.add_child(child)
        clone = root.copy_subtree()
        clone.children[0].absorb_cell(_cell({"age": "adult"}))
        assert child.cell_count == 1
        assert clone.children[0].cell_count == 2


class TestAggregateCache:
    def test_absorb_updates_cached_aggregates(self):
        summary = Summary()
        summary.absorb_cell(_cell({"age": "young"}, count=1.5, peers=("p1",)))
        summary.absorb_cell(_cell({"age": "adult"}, count=2.0, peers=("p2",)))
        assert summary.tuple_count == pytest.approx(3.5)
        assert summary.intent == {"age": frozenset({"young", "adult"})}
        assert summary.peer_extent == {"p1", "p2"}
        assert summary.profile[Descriptor("age", "young")] == pytest.approx(1.5)
        summary.check_cache()

    def test_check_cache_detects_out_of_band_mutation(self):
        summary = summary_from_cells([_cell({"age": "young"}, count=1.0)])
        assert summary.tuple_count == pytest.approx(1.0)  # materialize the cache
        key = next(iter(summary.cells))
        summary.cells[key].tuple_count = 99.0
        with pytest.raises(SummaryError):
            summary.check_cache()
        summary.invalidate_cache()
        assert summary.tuple_count == pytest.approx(99.0)
        summary.check_cache()

    def test_constructor_supplied_cells_rebuild_lazily(self):
        original = summary_from_cells([_cell({"age": "young"}, count=2.0)])
        clone = Summary(cells={k: c.copy() for k, c in original.cells.items()})
        assert clone.tuple_count == pytest.approx(2.0)
        assert clone.intent == original.intent
        clone.check_cache()

    def test_recompute_from_children_merges_child_caches(self):
        parent = Summary()
        parent.add_child(
            summary_from_cells([_cell({"age": "young"}, count=1.0, peers=("p1",))])
        )
        parent.add_child(
            summary_from_cells([_cell({"age": "young"}, count=2.0, peers=("p2",))])
        )
        parent.recompute_from_children()
        assert parent.cell_count == 1  # same key merged
        assert parent.tuple_count == pytest.approx(3.0)
        assert parent.peer_extent == {"p1", "p2"}
        parent.check_cache()

    def test_statistics_returns_independent_copy(self):
        summary = summary_from_cells([_cell({"age": "young"}, count=2.0)])
        bundle = summary.statistics()
        bundle.add_record({"age": 50.0}, weight=10.0)
        assert summary.statistics().get("age").count == pytest.approx(2.0)


class TestIterativeDepth:
    def test_depth_on_chain_beyond_recursion_limit(self):
        import sys

        root = Summary()
        node = root
        for _ in range(sys.getrecursionlimit() + 500):
            child = Summary()
            node.add_child(child)
            node = child
        assert root.depth() == sys.getrecursionlimit() + 500

    def test_depth_of_bushy_tree(self):
        root = Summary()
        shallow, deep = Summary(), Summary()
        root.add_child(shallow)
        root.add_child(deep)
        deep.add_child(Summary())
        assert root.depth() == 2
