"""Unit tests for summary serialization."""

import json

import pytest

from repro.exceptions import SummaryError
from repro.fuzzy.linguistic import Descriptor
from repro.saintetiq.cell import Cell, make_cell_key
from repro.saintetiq.serialization import (
    cell_from_dict,
    cell_to_dict,
    encoded_size_bytes,
    hierarchy_from_dict,
    hierarchy_from_json,
    hierarchy_to_dict,
    hierarchy_to_json,
    summary_from_dict,
    summary_to_dict,
)


def _cell():
    key = make_cell_key([Descriptor("age", "young"), Descriptor("bmi", "normal")])
    cell = Cell(key=key)
    cell.absorb_record(
        {"age": 20, "bmi": 20},
        0.7,
        {Descriptor("age", "young"): 0.7, Descriptor("bmi", "normal"): 1.0},
        peer="p1",
    )
    return cell


class TestCellSerialization:
    def test_round_trip(self):
        original = _cell()
        restored = cell_from_dict(cell_to_dict(original))
        assert restored.key == original.key
        assert restored.tuple_count == pytest.approx(original.tuple_count)
        assert restored.grades == original.grades
        assert restored.peers == original.peers
        assert restored.statistics.get("age").mean == pytest.approx(20.0)

    def test_payload_is_json_compatible(self):
        json.dumps(cell_to_dict(_cell()))

    def test_malformed_payload_raises(self):
        with pytest.raises(SummaryError):
            cell_from_dict({"key": [["age", "young"], ["age", "old"]], "tuple_count": 1})
        with pytest.raises(SummaryError):
            cell_from_dict({"tuple_count": 1})


class TestSummarySerialization:
    def test_round_trip_preserves_structure(self, example_hierarchy):
        payload = summary_to_dict(example_hierarchy.root)
        restored = summary_from_dict(payload)
        assert restored.tuple_count == pytest.approx(example_hierarchy.root.tuple_count)
        assert len(restored.children) == len(example_hierarchy.root.children)
        assert restored.intent == example_hierarchy.root.intent


class TestHierarchySerialization:
    def test_round_trip_preserves_leaf_cells_and_metadata(
        self, example_hierarchy, numeric_background
    ):
        payload = hierarchy_to_dict(example_hierarchy)
        restored = hierarchy_from_dict(payload, numeric_background)
        assert restored.owner == example_hierarchy.owner
        assert restored.attributes == example_hierarchy.attributes
        assert restored.records_processed == example_hierarchy.records_processed
        assert restored.root.tuple_count == pytest.approx(
            example_hierarchy.root.tuple_count
        )
        assert restored.signature() == example_hierarchy.signature()

    def test_json_round_trip(self, example_hierarchy, numeric_background):
        encoded = hierarchy_to_json(example_hierarchy)
        restored = hierarchy_from_json(encoded, numeric_background)
        assert restored.leaf_count() == example_hierarchy.leaf_count()

    def test_malformed_json_raises(self, numeric_background):
        with pytest.raises(SummaryError):
            hierarchy_from_json("{not json", numeric_background)

    def test_unsupported_version_raises(self, example_hierarchy, numeric_background):
        payload = hierarchy_to_dict(example_hierarchy)
        payload["version"] = 99
        with pytest.raises(SummaryError):
            hierarchy_from_dict(payload, numeric_background)

    def test_encoded_size_reasonable(self, example_hierarchy):
        size = encoded_size_bytes(example_hierarchy)
        assert size > 0
        # A tiny 3-record hierarchy should stay within a few kilobytes — the
        # same order of magnitude as the 512-bytes-per-node model estimate.
        assert size < 16 * 1024
