"""Unit tests for summary serialization."""

import json

import pytest

from repro.database.generator import PatientGenerator
from repro.exceptions import SummaryError
from repro.fuzzy.linguistic import Descriptor
from repro.saintetiq.cell import Cell, make_cell_key
from repro.saintetiq.hierarchy import SummaryHierarchy
from repro.saintetiq.merging import merge_hierarchies
from repro.saintetiq.serialization import (
    canonical_encode,
    canonical_json,
    cell_from_dict,
    cell_to_dict,
    content_hash,
    encoded_size_bytes,
    hierarchy_content_hash,
    hierarchy_from_dict,
    hierarchy_from_json,
    hierarchy_to_dict,
    hierarchy_to_json,
    summary_from_dict,
    summary_to_dict,
)


def _cell():
    key = make_cell_key([Descriptor("age", "young"), Descriptor("bmi", "normal")])
    cell = Cell(key=key)
    cell.absorb_record(
        {"age": 20, "bmi": 20},
        0.7,
        {Descriptor("age", "young"): 0.7, Descriptor("bmi", "normal"): 1.0},
        peer="p1",
    )
    return cell


class TestCellSerialization:
    def test_round_trip(self):
        original = _cell()
        restored = cell_from_dict(cell_to_dict(original))
        assert restored.key == original.key
        assert restored.tuple_count == pytest.approx(original.tuple_count)
        assert restored.grades == original.grades
        assert restored.peers == original.peers
        assert restored.statistics.get("age").mean == pytest.approx(20.0)

    def test_payload_is_json_compatible(self):
        json.dumps(cell_to_dict(_cell()))

    def test_malformed_payload_raises(self):
        with pytest.raises(SummaryError):
            cell_from_dict({"key": [["age", "young"], ["age", "old"]], "tuple_count": 1})
        with pytest.raises(SummaryError):
            cell_from_dict({"tuple_count": 1})


class TestSummarySerialization:
    def test_round_trip_preserves_structure(self, example_hierarchy):
        payload = summary_to_dict(example_hierarchy.root)
        restored = summary_from_dict(payload)
        assert restored.tuple_count == pytest.approx(example_hierarchy.root.tuple_count)
        assert len(restored.children) == len(example_hierarchy.root.children)
        assert restored.intent == example_hierarchy.root.intent


class TestHierarchySerialization:
    def test_round_trip_preserves_leaf_cells_and_metadata(
        self, example_hierarchy, numeric_background
    ):
        payload = hierarchy_to_dict(example_hierarchy)
        restored = hierarchy_from_dict(payload, numeric_background)
        assert restored.owner == example_hierarchy.owner
        assert restored.attributes == example_hierarchy.attributes
        assert restored.records_processed == example_hierarchy.records_processed
        assert restored.root.tuple_count == pytest.approx(
            example_hierarchy.root.tuple_count
        )
        assert restored.signature() == example_hierarchy.signature()

    def test_json_round_trip(self, example_hierarchy, numeric_background):
        encoded = hierarchy_to_json(example_hierarchy)
        restored = hierarchy_from_json(encoded, numeric_background)
        assert restored.leaf_count() == example_hierarchy.leaf_count()

    def test_malformed_json_raises(self, numeric_background):
        with pytest.raises(SummaryError):
            hierarchy_from_json("{not json", numeric_background)

    def test_unsupported_version_raises(self, example_hierarchy, numeric_background):
        payload = hierarchy_to_dict(example_hierarchy)
        payload["version"] = 99
        with pytest.raises(SummaryError):
            hierarchy_from_dict(payload, numeric_background)

    def test_encoded_size_reasonable(self, example_hierarchy):
        size = encoded_size_bytes(example_hierarchy)
        assert size > 0
        # A tiny 3-record hierarchy should stay within a few kilobytes — the
        # same order of magnitude as the 512-bytes-per-node model estimate.
        assert size < 16 * 1024


class TestCanonicalEncoding:
    def test_canonical_json_is_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [True, None]}) == '{"a":[true,null],"b":1}'

    def test_encoded_size_uses_the_canonical_encoding(self, example_hierarchy):
        """Storage-cost figures and snapshot hashes measure the same bytes."""
        payload = hierarchy_to_dict(example_hierarchy)
        assert encoded_size_bytes(example_hierarchy) == len(canonical_encode(payload))
        assert encoded_size_bytes(example_hierarchy) == len(
            hierarchy_to_json(example_hierarchy).encode("utf-8")
        )

    def test_content_hash_keys_the_canonical_bytes(self, example_hierarchy):
        payload = hierarchy_to_dict(example_hierarchy)
        assert hierarchy_content_hash(example_hierarchy) == content_hash(payload)
        assert len(hierarchy_content_hash(example_hierarchy)) == 64

    def test_equal_hierarchies_hash_equal(self, numeric_background, paper_records):
        def build():
            hierarchy = SummaryHierarchy(
                numeric_background, attributes=["age", "bmi"], owner="peer-a"
            )
            hierarchy.add_records(paper_records)
            return hierarchy

        assert hierarchy_content_hash(build()) == hierarchy_content_hash(build())


def _grown_hierarchy(background, count=60, owner="peer-a"):
    hierarchy = SummaryHierarchy(background, attributes=["age", "bmi"], owner=owner)
    records = [r.as_dict() for r in PatientGenerator(seed=9).relation(count)]
    hierarchy.add_records(records)
    return hierarchy


class TestExactRehydration:
    """Regression: rehydration restores caches, owners and the mutation counter.

    The pre-store decoder re-clustered the leaf cells from scratch, which lost
    the serialized structure and the copy-on-write/cache state of PRs 1–2.
    """

    def test_roundtrip_preserves_tree_structure(self, numeric_background):
        original = _grown_hierarchy(numeric_background)
        restored = hierarchy_from_dict(
            hierarchy_to_dict(original), numeric_background
        )
        assert restored.node_count() == original.node_count()
        assert restored.depth() == original.depth()
        assert restored.leaf_count() == original.leaf_count()
        assert hierarchy_to_dict(restored) == hierarchy_to_dict(original)

    def test_restored_caches_survive_check(self, numeric_background):
        original = _grown_hierarchy(numeric_background)
        restored = hierarchy_from_dict(
            hierarchy_to_dict(original), numeric_background
        )
        # validate() recomputes every cached aggregate from scratch and raises
        # on divergence, and checks the structural invariants.
        restored.validate()

    def test_restored_cells_are_owned_by_their_nodes(self, numeric_background):
        original = _grown_hierarchy(numeric_background)
        restored = hierarchy_from_dict(
            hierarchy_to_dict(original), numeric_background
        )
        for node in restored.root.iter_subtree():
            for cell in node.cells.values():
                assert cell.owner is node

    def test_mutation_counter_resumes(self, numeric_background):
        original = _grown_hierarchy(numeric_background)
        restored = hierarchy_from_dict(
            hierarchy_to_dict(original), numeric_background
        )
        assert (
            restored._builder.mutation_count == original._builder.mutation_count
        )

    def test_roundtripped_hierarchy_absorbs_byte_identically(
        self, numeric_background
    ):
        """The satellite's acceptance: absorb after a roundtrip == no roundtrip."""
        original = _grown_hierarchy(numeric_background)
        restored = hierarchy_from_dict(
            hierarchy_to_dict(original), numeric_background
        )
        extra = [r.as_dict() for r in PatientGenerator(seed=31).relation(40)]
        original.add_records(extra)
        restored.add_records(extra)
        assert hierarchy_content_hash(restored) == hierarchy_content_hash(original)
        original.validate()
        restored.validate()

    def test_roundtripped_hierarchy_merges_byte_identically(self, numeric_background):
        first = _grown_hierarchy(numeric_background, owner="peer-a")
        second = _grown_hierarchy(numeric_background, count=30, owner="peer-b")
        roundtrip = lambda h: hierarchy_from_dict(  # noqa: E731
            hierarchy_to_dict(h), numeric_background
        )
        merged_original = merge_hierarchies([first, second], owner="sp")
        merged_restored = merge_hierarchies(
            [roundtrip(first), roundtrip(second)], owner="sp"
        )
        assert hierarchy_content_hash(merged_restored) == hierarchy_content_hash(
            merged_original
        )

    def test_version_1_payloads_still_decode(self, numeric_background):
        original = _grown_hierarchy(numeric_background)
        payload = hierarchy_to_dict(original)
        payload["version"] = 1
        del payload["incorporated"]
        restored = hierarchy_from_dict(payload, numeric_background)
        assert hierarchy_to_dict(restored)["root"] == hierarchy_to_dict(original)["root"]
