"""Cache-correctness and equivalence tests for the aggregate cache layer.

The incremental cache in :mod:`repro.saintetiq.summary` must stay consistent
with a from-scratch recomputation across *every* mutation path — construction
(with and without the structural operators), hierarchy merging, maintenance
reconciliation, snapshots, serialization round-trips — and the cached scoring
fast path must reproduce the reference implementation's hierarchies exactly.
"""

import math
import random

import pytest

from repro.core.domain import Domain
from repro.core.maintenance import MaintenanceEngine
from repro.database.generator import PatientGenerator
from repro.fuzzy.linguistic import Descriptor
from repro.fuzzy.vocabularies import medical_background_knowledge
from repro.querying.proposition import Clause, Proposition
from repro.querying.selection import select_summaries
from repro.saintetiq.cell import Cell, make_cell_key
from repro.saintetiq.clustering import ClusteringParameters, SummaryBuilder
from repro.saintetiq.hierarchy import SummaryHierarchy
from repro.saintetiq.merging import merge_hierarchies, merge_into
from repro.saintetiq.serialization import hierarchy_from_json, hierarchy_to_json

BACKGROUND = medical_background_knowledge(include_categorical=False)

PARAMETER_GRID = [
    ClusteringParameters(max_children=2, enable_merge=True, enable_split=True),
    ClusteringParameters(max_children=4, enable_merge=True, enable_split=True),
    ClusteringParameters(max_children=4, enable_merge=False, enable_split=True),
    ClusteringParameters(max_children=4, enable_merge=True, enable_split=False),
    ClusteringParameters(max_children=3, enable_merge=False, enable_split=False),
]


def random_cells(count, n_attrs=3, n_labels=5, seed=0, peers=("p1", "p2", "p3")):
    """A random stream of populated grid cells with fractional masses."""
    rng = random.Random(seed)
    cells = []
    for _ in range(count):
        key = make_cell_key(
            Descriptor(f"a{index}", f"l{rng.randrange(n_labels)}")
            for index in range(n_attrs)
        )
        cell = Cell(key=key, tuple_count=rng.uniform(0.05, 4.0))
        cell.grades = {descriptor: rng.random() for descriptor in key}
        cell.peers = {rng.choice(peers)}
        cells.append(cell)
    return cells


def assert_tree_cache_consistent(root):
    for node in root.iter_subtree():
        node.check_cache()


def _records(count, seed=0):
    return PatientGenerator(seed=seed, background=BACKGROUND).records(count)


class TestCacheCorrectness:
    """Cached aggregates equal a fresh recomputation after every mutation."""

    @pytest.mark.parametrize("parameters", PARAMETER_GRID)
    @pytest.mark.parametrize("seed", [0, 7])
    def test_random_streams_keep_cache_consistent(self, parameters, seed):
        builder = SummaryBuilder(parameters)
        for index, cell in enumerate(random_cells(240, seed=seed), start=1):
            builder.incorporate(cell)
            if index % 16 == 0:
                assert_tree_cache_consistent(builder.root)
        assert_tree_cache_consistent(builder.root)

    def test_cache_survives_hierarchy_merging(self):
        owners = [f"peer{i}" for i in range(4)]
        hierarchies = []
        for index, owner in enumerate(owners):
            hierarchy = SummaryHierarchy(
                BACKGROUND, attributes=["age", "bmi"], owner=owner
            )
            hierarchy.add_records(_records(40, seed=index))
            hierarchies.append(hierarchy)
        merged = merge_hierarchies(hierarchies, owner="sp")
        merged.validate()  # validate() includes per-node cache checks
        assert merged.peer_extent() == set(owners)
        # Incremental merge into an existing hierarchy (the churn/join path).
        target = hierarchies[0]
        merge_into(target, hierarchies[1])
        target.validate()

    def test_cache_survives_snapshot_and_serialization_roundtrip(self):
        hierarchy = SummaryHierarchy(BACKGROUND, attributes=["age", "bmi"], owner="p")
        hierarchy.add_records(_records(60))
        snapshot = hierarchy.snapshot()
        snapshot.validate()
        restored = hierarchy_from_json(hierarchy_to_json(hierarchy), BACKGROUND)
        restored.validate()
        assert math.isclose(
            restored.root.tuple_count, hierarchy.root.tuple_count, rel_tol=1e-9
        )
        assert restored.signature() == hierarchy.signature()

    def test_cache_survives_maintenance_reconciliation(self):
        domain = Domain.create("sp")
        locals_ = {}
        for index, peer in enumerate(["sp", "p1", "p2"]):
            hierarchy = SummaryHierarchy(
                BACKGROUND, attributes=["age", "bmi"], owner=peer
            )
            hierarchy.add_records(_records(30, seed=index))
            locals_[peer] = hierarchy
            if peer != "sp":
                domain.add_partner(peer, distance=1.0)
        engine = MaintenanceEngine()
        engine.push_stale(domain, "p1")
        engine.reconcile(domain, local_summaries=locals_)
        assert domain.global_summary is not None
        domain.global_summary.validate()
        assert domain.global_summary.peer_extent() == {"sp", "p1", "p2"}

    def test_invalidated_cache_rebuilds_to_same_values(self):
        builder = SummaryBuilder()
        builder.incorporate_all(random_cells(120, seed=3))
        before = {
            node.node_id: (dict(node.profile), node.tuple_count, node.intent)
            for node in builder.root.iter_subtree()
        }
        for node in builder.root.iter_subtree():
            node.invalidate_cache()
        for node in builder.root.iter_subtree():
            profile, mass, intent = before[node.node_id]
            assert set(node.profile) == set(profile)
            for descriptor, weight in node.profile.items():
                assert math.isclose(weight, profile[descriptor], rel_tol=1e-9)
            assert math.isclose(node.tuple_count, mass, rel_tol=1e-9)
            assert node.intent == intent


class TestScoringEquivalence:
    """The cached fast path reproduces the reference implementation exactly."""

    @pytest.mark.parametrize("parameters", PARAMETER_GRID)
    def test_cached_and_reference_builders_agree(self, parameters):
        cells = random_cells(200, seed=11)
        cached = SummaryBuilder(parameters)
        reference = SummaryBuilder(parameters, reference_scoring=True)
        cached.incorporate_all(cell.copy() for cell in cells)
        reference.incorporate_all(cell.copy() for cell in cells)
        assert _tree_shape(cached.root) == _tree_shape(reference.root)

    def test_identical_hierarchies_on_patient_workload(self):
        records = _records(300)
        cached = SummaryHierarchy(BACKGROUND, attributes=["age", "bmi"], owner="p")
        reference = SummaryHierarchy(BACKGROUND, attributes=["age", "bmi"], owner="p")
        reference._builder = SummaryBuilder(
            reference._builder.parameters, reference_scoring=True
        )
        cached.add_records(records)
        reference.add_records(records)
        assert hierarchy_to_json(cached) == hierarchy_to_json(reference)

    def test_identical_query_selections(self):
        records = _records(250)
        cached = SummaryHierarchy(BACKGROUND, attributes=["age", "bmi"], owner="p")
        reference = SummaryHierarchy(BACKGROUND, attributes=["age", "bmi"], owner="p")
        reference._builder = SummaryBuilder(
            reference._builder.parameters, reference_scoring=True
        )
        cached.add_records(records)
        reference.add_records(records)
        propositions = [
            Proposition([Clause("age", {"young", "adult"})]),
            Proposition(
                [
                    Clause("age", {"old"}),
                    Clause("bmi", {"obese", "overweight"}),
                ]
            ),
        ]
        for proposition in propositions:
            left = select_summaries(cached, proposition)
            right = select_summaries(reference, proposition)
            assert left.visited_nodes == right.visited_nodes
            assert [s.intent for s in left.summaries] == [
                s.intent for s in right.summaries
            ]
            assert math.isclose(
                left.matching_tuple_count(),
                right.matching_tuple_count(),
                rel_tol=1e-9,
            ) or (left.matching_tuple_count() == right.matching_tuple_count() == 0.0)
            assert left.peer_extent() == right.peer_extent()

    def test_candidate_scores_match_reference(self):
        """Per-step check: both scorers yield numerically close candidates."""
        mismatches = []

        class ComparingBuilder(SummaryBuilder):
            def _candidates_cached(self, node, children, profiles, cell_profile, ranked):
                fast = super()._candidates_cached(
                    node, children, profiles, cell_profile, ranked
                )
                reference = self._candidates_reference(
                    node, children, profiles, cell_profile, ranked
                )
                for (f_score, f_op, f_arg), (r_score, r_op, r_arg) in zip(
                    fast, reference
                ):
                    if (f_op, f_arg) != (r_op, r_arg) or not math.isclose(
                        f_score, r_score, rel_tol=1e-9, abs_tol=1e-12
                    ):
                        mismatches.append(((f_score, f_op), (r_score, r_op)))
                return fast

        builder = ComparingBuilder()
        builder.incorporate_all(random_cells(150, seed=21))
        assert not mismatches


def _tree_shape(node):
    """Canonical structural fingerprint: cells, masses, and child shapes."""
    return (
        tuple(sorted(tuple(map(str, key)) for key in node.cells)),
        round(node.tuple_count, 9),
        tuple(_tree_shape(child) for child in node.children),
    )
