"""Unit tests for summary hierarchies."""

import pytest

from repro.database.generator import PatientGenerator
from repro.saintetiq.hierarchy import DEFAULT_SUMMARY_SIZE_BYTES, SummaryHierarchy


class TestConstruction:
    def test_empty_hierarchy(self, numeric_background):
        hierarchy = SummaryHierarchy(numeric_background)
        assert hierarchy.is_empty()
        assert hierarchy.node_count() == 1
        assert hierarchy.records_processed == 0

    def test_add_record_returns_cell_contributions(self, numeric_background):
        hierarchy = SummaryHierarchy(numeric_background, attributes=["age", "bmi"])
        assert hierarchy.add_record({"age": 20, "bmi": 20}) == 2
        assert hierarchy.add_record({"age": 15, "bmi": 17}) == 1
        assert hierarchy.add_record({"bmi": 17}) == 0  # missing attribute

    def test_paper_example_structure(self, example_hierarchy):
        assert example_hierarchy.records_processed == 3
        assert example_hierarchy.leaf_count() <= 3
        assert example_hierarchy.root.tuple_count == pytest.approx(3.0)

    def test_owner_propagates_to_peer_extent(self, example_hierarchy):
        assert example_hierarchy.peer_extent() == {"peer-a"}

    def test_attributes_property(self, example_hierarchy):
        assert example_hierarchy.attributes == ["age", "bmi"]


class TestMetrics:
    def test_node_and_leaf_counts(self, example_hierarchy):
        assert example_hierarchy.node_count() >= example_hierarchy.leaf_count()

    def test_depth_non_negative(self, example_hierarchy):
        assert example_hierarchy.depth() >= 0

    def test_average_arity(self, numeric_background):
        generator = PatientGenerator(seed=3)
        hierarchy = SummaryHierarchy(numeric_background, attributes=["age", "bmi"])
        hierarchy.add_records(generator.records(60))
        arity = hierarchy.average_arity()
        assert 0 < arity <= 4.0  # default max_children

    def test_size_bytes(self, example_hierarchy):
        assert example_hierarchy.size_bytes() == (
            DEFAULT_SUMMARY_SIZE_BYTES * example_hierarchy.node_count()
        )

    def test_leaf_cells_cover_all_mass(self, numeric_background):
        generator = PatientGenerator(seed=9)
        hierarchy = SummaryHierarchy(numeric_background, attributes=["age", "bmi"])
        records = generator.records(40)
        hierarchy.add_records(records)
        mass = sum(cell.tuple_count for cell in hierarchy.leaf_cells())
        assert mass == pytest.approx(hierarchy.root.tuple_count)

    def test_leaf_count_bounded_by_grid(self, numeric_background):
        generator = PatientGenerator(seed=4)
        hierarchy = SummaryHierarchy(numeric_background, attributes=["age", "bmi"])
        hierarchy.add_records(generator.records(200))
        assert hierarchy.leaf_count() <= hierarchy.mapping.grid_size()


class TestSignatureAndDrift:
    def test_signature_empty_for_empty_hierarchy(self, numeric_background):
        assert SummaryHierarchy(numeric_background).signature() == frozenset()

    def test_drift_zero_against_self(self, example_hierarchy):
        assert example_hierarchy.drift_from(example_hierarchy.signature()) == 0.0

    def test_drift_detects_new_descriptors(self, numeric_background):
        hierarchy = SummaryHierarchy(numeric_background, attributes=["age", "bmi"])
        hierarchy.add_record({"age": 15, "bmi": 17})
        before = hierarchy.signature()
        hierarchy.add_record({"age": 80, "bmi": 35})
        assert hierarchy.drift_from(before) > 0.0

    def test_drift_bounded_by_one(self, numeric_background):
        hierarchy = SummaryHierarchy(numeric_background, attributes=["age", "bmi"])
        hierarchy.add_record({"age": 15, "bmi": 17})
        assert 0.0 <= hierarchy.drift_from(frozenset()) <= 1.0


class TestSnapshotAndValidation:
    def test_snapshot_preserves_mass_and_is_independent(self, example_hierarchy):
        snapshot = example_hierarchy.snapshot()
        assert snapshot.root.tuple_count == pytest.approx(
            example_hierarchy.root.tuple_count
        )
        snapshot.add_record({"age": 40, "bmi": 22})
        assert example_hierarchy.root.tuple_count == pytest.approx(3.0)

    def test_validate_passes_on_built_hierarchy(self, numeric_background):
        generator = PatientGenerator(seed=6)
        hierarchy = SummaryHierarchy(numeric_background, attributes=["age", "bmi"])
        hierarchy.add_records(generator.records(80))
        hierarchy.validate()

    def test_validate_passes_on_empty_hierarchy(self, numeric_background):
        SummaryHierarchy(numeric_background).validate()
