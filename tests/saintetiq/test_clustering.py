"""Unit tests for the incremental conceptual clustering."""

import random

import pytest

from repro.exceptions import SummaryError
from repro.fuzzy.linguistic import Descriptor
from repro.saintetiq.cell import Cell, make_cell_key
from repro.saintetiq.clustering import (
    ClusteringParameters,
    SummaryBuilder,
    partition_score,
)


def _cell(labels, count=1.0):
    key = make_cell_key(Descriptor(a, l) for a, l in labels.items())
    cell = Cell(key=key)
    grades = {Descriptor(a, l): 1.0 for a, l in labels.items()}
    cell.absorb_record({a: 0.0 for a in labels}, count, grades)
    return cell


def _random_cells(count, seed=0):
    rng = random.Random(seed)
    ages = ["child", "young", "adult", "old"]
    bmis = ["underweight", "normal", "overweight", "obese"]
    return [
        _cell({"age": rng.choice(ages), "bmi": rng.choice(bmis)}, count=rng.uniform(0.2, 3.0))
        for _ in range(count)
    ]


class TestClusteringParameters:
    def test_defaults(self):
        parameters = ClusteringParameters()
        assert parameters.max_children >= 2

    def test_invalid_arity_raises(self):
        with pytest.raises(SummaryError):
            ClusteringParameters(max_children=1)


class TestPartitionScore:
    def test_empty_partition_scores_zero(self):
        assert partition_score([]) == 0.0
        assert partition_score([{}]) == 0.0

    def test_homogeneous_split_beats_mixed_split(self):
        young = {Descriptor("age", "young"): 4.0}
        adult = {Descriptor("age", "adult"): 4.0}
        mixed_a = {Descriptor("age", "young"): 2.0, Descriptor("age", "adult"): 2.0}
        mixed_b = {Descriptor("age", "young"): 2.0, Descriptor("age", "adult"): 2.0}
        assert partition_score([young, adult]) > partition_score([mixed_a, mixed_b])

    def test_score_of_single_pure_child_is_non_negative(self):
        assert partition_score([{Descriptor("age", "young"): 1.0}]) >= 0.0


class TestSummaryBuilder:
    def test_first_cell_becomes_root_leaf(self):
        builder = SummaryBuilder()
        builder.incorporate(_cell({"age": "young"}))
        assert builder.root.is_leaf
        assert builder.root.cell_count == 1

    def test_same_key_merges_at_root(self):
        builder = SummaryBuilder()
        builder.incorporate(_cell({"age": "young"}, count=1.0))
        builder.incorporate(_cell({"age": "young"}, count=2.0))
        assert builder.root.is_leaf
        assert builder.root.tuple_count == pytest.approx(3.0)

    def test_two_distinct_cells_create_children(self):
        builder = SummaryBuilder()
        builder.incorporate(_cell({"age": "young"}))
        builder.incorporate(_cell({"age": "adult"}))
        assert not builder.root.is_leaf
        assert len(builder.root.children) == 2

    def test_root_always_covers_everything(self):
        builder = SummaryBuilder()
        cells = _random_cells(30)
        builder.incorporate_all(cells)
        total = sum(cell.tuple_count for cell in cells)
        assert builder.root.tuple_count == pytest.approx(total)

    def test_leaves_cover_single_cell_keys(self):
        builder = SummaryBuilder()
        builder.incorporate_all(_random_cells(40, seed=3))
        for leaf in builder.root.leaves():
            assert leaf.cell_count == 1

    def test_internal_nodes_union_of_children(self):
        builder = SummaryBuilder()
        builder.incorporate_all(_random_cells(40, seed=5))
        for node in builder.root.iter_subtree():
            if node.is_leaf:
                continue
            child_keys = set()
            for child in node.children:
                child_keys |= set(child.cells)
            assert child_keys == set(node.cells)

    def test_arity_bound_respected(self):
        parameters = ClusteringParameters(max_children=3)
        builder = SummaryBuilder(parameters)
        builder.incorporate_all(_random_cells(60, seed=7))
        for node in builder.root.iter_subtree():
            assert len(node.children) <= 3

    def test_incorporated_counter(self):
        builder = SummaryBuilder()
        builder.incorporate_all(_random_cells(12))
        assert builder.incorporated_cells == 12

    def test_leaf_count_bounded_by_distinct_keys(self):
        builder = SummaryBuilder()
        cells = _random_cells(80, seed=11)
        builder.incorporate_all(cells)
        distinct_keys = {cell.key for cell in cells}
        assert len(builder.root.leaves()) <= len(distinct_keys) + 1

    def test_empty_cell_raises(self):
        builder = SummaryBuilder()
        bad = Cell(key=())
        with pytest.raises(SummaryError):
            builder.incorporate(bad)

    def test_disable_merge_and_split_still_works(self):
        parameters = ClusteringParameters(enable_merge=False, enable_split=False, max_children=8)
        builder = SummaryBuilder(parameters)
        builder.incorporate_all(_random_cells(30, seed=13))
        assert builder.root.tuple_count > 0

    def test_deterministic_for_same_input(self):
        cells = _random_cells(25, seed=17)
        first = SummaryBuilder()
        second = SummaryBuilder()
        first.incorporate_all([cell.copy() for cell in cells])
        second.incorporate_all([cell.copy() for cell in cells])
        assert first.root.tuple_count == pytest.approx(second.root.tuple_count)
        assert len(first.root.leaves()) == len(second.root.leaves())


class TestMergeCellSharing:
    """Structural merges alias cells (copy-on-write) instead of deep-copying."""

    def _merge_heavy_builder(self, cells, **kwargs):
        builder = SummaryBuilder(ClusteringParameters(max_children=2), **kwargs)
        builder.incorporate_all(cells)
        return builder

    def test_shared_and_copied_merges_build_identical_trees(self):
        cells = _random_cells(60, seed=5)
        shared = self._merge_heavy_builder([c.copy() for c in cells])
        copied = self._merge_heavy_builder(
            [c.copy() for c in cells], copy_on_merge=True
        )
        assert set(shared.root.cells) == set(copied.root.cells)
        assert shared.root.tuple_count == pytest.approx(copied.root.tuple_count)
        for key, cell in shared.root.cells.items():
            assert cell.tuple_count == pytest.approx(copied.root.cells[key].tuple_count)

    def test_merged_nodes_alias_children_cells(self):
        builder = self._merge_heavy_builder(_random_cells(40, seed=6))
        aliases = 0
        for node in builder.root.iter_subtree():
            for child in node.children:
                for key, cell in child.cells.items():
                    if node.cells.get(key) is cell:
                        aliases += 1
        assert aliases > 0, "expected at least one shared (uncopied) cell"

    def test_caches_stay_consistent_under_sharing(self):
        """Every node's cached aggregates survive alias-then-absorb cycles."""
        builder = self._merge_heavy_builder(_random_cells(80, seed=7))
        for node in builder.root.iter_subtree():
            node.check_cache()

    def test_only_owner_mutates_a_shared_cell(self):
        """Absorbing into an aliased key copies before mutating (COW)."""
        builder = SummaryBuilder(ClusteringParameters(max_children=2))
        cells = _random_cells(30, seed=8)
        builder.incorporate_all(cells)
        # Re-incorporate every distinct key once more: every node on the
        # descent path must keep map and cached profile in sync even where
        # its entry aliased a descendant's cell.
        for cell in list(builder.root.cells.values()):
            builder.incorporate(cell.copy())
        for node in builder.root.iter_subtree():
            node.check_cache()
