"""Unit tests for hierarchy merging."""

import pytest

from repro.database.generator import PatientGenerator
from repro.exceptions import SummaryError
from repro.fuzzy.vocabularies import medical_background_knowledge
from repro.saintetiq.hierarchy import SummaryHierarchy
from repro.saintetiq.merging import merge_hierarchies, merge_into


def _hierarchy(owner, seed, count=20, background=None):
    background = background or medical_background_knowledge(include_categorical=False)
    hierarchy = SummaryHierarchy(background, attributes=["age", "bmi"], owner=owner)
    hierarchy.add_records(PatientGenerator(seed=seed).records(count))
    return hierarchy


class TestMergeInto:
    def test_merge_preserves_total_mass(self):
        first = _hierarchy("p1", seed=1)
        second = _hierarchy("p2", seed=2)
        expected = first.root.tuple_count + second.root.tuple_count
        merged = merge_into(first, second)
        assert merged == len(second.leaf_cells())
        assert first.root.tuple_count == pytest.approx(expected)

    def test_merge_unions_peer_extents(self):
        first = _hierarchy("p1", seed=1)
        second = _hierarchy("p2", seed=2)
        merge_into(first, second)
        assert first.peer_extent() == {"p1", "p2"}

    def test_merge_leaves_source_untouched(self):
        first = _hierarchy("p1", seed=1)
        second = _hierarchy("p2", seed=2)
        mass = second.root.tuple_count
        merge_into(first, second)
        assert second.root.tuple_count == pytest.approx(mass)
        assert second.peer_extent() == {"p2"}

    def test_incompatible_backgrounds_raise(self):
        first = _hierarchy("p1", seed=1)
        other_background = medical_background_knowledge(diseases=["flu"])
        second = SummaryHierarchy(other_background, owner="p2")
        second.add_record({"age": 20, "bmi": 20, "sex": "female", "disease": "flu"})
        with pytest.raises(SummaryError):
            merge_into(first, second)

    def test_different_attribute_sets_raise(self):
        background = medical_background_knowledge(include_categorical=False)
        first = SummaryHierarchy(background, attributes=["age"], owner="p1")
        first.add_record({"age": 20})
        second = SummaryHierarchy(background, attributes=["age", "bmi"], owner="p2")
        second.add_record({"age": 20, "bmi": 20})
        with pytest.raises(SummaryError):
            merge_into(first, second)


class TestMergeHierarchies:
    def test_merge_many(self):
        hierarchies = [_hierarchy(f"p{i}", seed=i) for i in range(4)]
        expected = sum(h.root.tuple_count for h in hierarchies)
        merged = merge_hierarchies(hierarchies, owner="sp")
        assert merged.root.tuple_count == pytest.approx(expected)
        assert merged.peer_extent() == {"p0", "p1", "p2", "p3"}
        assert merged.owner == "sp"

    def test_merged_size_bounded_by_grid(self):
        hierarchies = [_hierarchy(f"p{i}", seed=i, count=60) for i in range(3)]
        merged = merge_hierarchies(hierarchies)
        assert merged.leaf_count() <= merged.mapping.grid_size()

    def test_merge_empty_iterable_raises(self):
        with pytest.raises(SummaryError):
            merge_hierarchies([])

    def test_merge_single_hierarchy_copies_it(self):
        single = _hierarchy("p1", seed=5)
        merged = merge_hierarchies([single])
        assert merged.root.tuple_count == pytest.approx(single.root.tuple_count)
        merged.add_record({"age": 30, "bmi": 22})
        assert single.root.tuple_count != pytest.approx(merged.root.tuple_count)

    def test_merge_keeps_validation_invariants(self):
        hierarchies = [_hierarchy(f"p{i}", seed=i, count=30) for i in range(3)]
        merged = merge_hierarchies(hierarchies)
        merged.validate()
