"""Unit tests for topology generation (BRITE substitute)."""

import networkx as nx
import pytest

from repro.exceptions import NetworkError
from repro.network.topology import (
    TopologyConfig,
    degree_statistics,
    edge_latency,
    highest_degree_nodes,
    power_law_topology,
)


class TestTopologyConfig:
    def test_too_few_peers_raise(self):
        with pytest.raises(NetworkError):
            TopologyConfig(peer_count=1)

    def test_invalid_degree_raises(self):
        with pytest.raises(NetworkError):
            TopologyConfig(peer_count=10, average_degree=0.5)

    def test_unknown_model_raises(self):
        with pytest.raises(NetworkError):
            TopologyConfig(peer_count=10, model="ring")


class TestBarabasiAlbert:
    def test_node_count_and_labels(self):
        graph = power_law_topology(TopologyConfig(peer_count=50, seed=1))
        assert graph.number_of_nodes() == 50
        assert all(node.startswith("p") for node in graph.nodes)

    def test_connected(self):
        graph = power_law_topology(TopologyConfig(peer_count=200, seed=2))
        assert nx.is_connected(graph)

    def test_average_degree_close_to_target(self):
        graph = power_law_topology(TopologyConfig(peer_count=500, seed=3))
        stats = degree_statistics(graph)
        assert 3.0 <= stats["average_degree"] <= 5.0

    def test_power_law_tail(self):
        graph = power_law_topology(TopologyConfig(peer_count=500, seed=3))
        stats = degree_statistics(graph)
        # Hubs exist: the max degree is far above the average.
        assert stats["max_degree"] > 4 * stats["average_degree"]

    def test_latencies_assigned_in_range(self):
        config = TopologyConfig(peer_count=50, seed=4, latency_range_ms=(5, 10))
        graph = power_law_topology(config)
        for _u, _v, data in graph.edges(data=True):
            assert 5 <= data["latency"] <= 10

    def test_reproducible_with_seed(self):
        first = power_law_topology(TopologyConfig(peer_count=60, seed=9))
        second = power_law_topology(TopologyConfig(peer_count=60, seed=9))
        assert set(first.edges) == set(second.edges)

    def test_different_seeds_differ(self):
        first = power_law_topology(TopologyConfig(peer_count=60, seed=1))
        second = power_law_topology(TopologyConfig(peer_count=60, seed=2))
        assert set(first.edges) != set(second.edges)


class TestWaxman:
    def test_waxman_generation(self):
        config = TopologyConfig(peer_count=100, model="waxman", seed=5)
        graph = power_law_topology(config)
        assert graph.number_of_nodes() == 100
        assert nx.is_connected(graph)

    def test_waxman_average_degree(self):
        config = TopologyConfig(peer_count=200, model="waxman", seed=5)
        graph = power_law_topology(config)
        stats = degree_statistics(graph)
        assert 3.0 <= stats["average_degree"] <= 5.5


class TestHelpers:
    def test_highest_degree_nodes(self):
        graph = power_law_topology(TopologyConfig(peer_count=100, seed=6))
        hubs = highest_degree_nodes(graph, 5)
        assert len(hubs) == 5
        degrees = dict(graph.degree)
        assert degrees[hubs[0]] == max(degrees.values())

    def test_edge_latency(self):
        graph = power_law_topology(TopologyConfig(peer_count=20, seed=7))
        u, v = next(iter(graph.edges))
        assert edge_latency(graph, u, v) is not None
        assert edge_latency(graph, "p0", "p0") is None or True  # self edge absent

    def test_degree_statistics_keys(self):
        graph = power_law_topology(TopologyConfig(peer_count=30, seed=8))
        stats = degree_statistics(graph)
        assert {"average_degree", "max_degree", "min_degree", "power_law_exponent"} <= set(stats)
