"""Unit tests for the discrete-event simulator."""

import pytest

from repro.exceptions import NetworkError
from repro.network.simulator import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        simulator = Simulator()
        order = []
        simulator.schedule(5.0, lambda: order.append("late"))
        simulator.schedule(1.0, lambda: order.append("early"))
        simulator.run()
        assert order == ["early", "late"]

    def test_ties_break_by_insertion_order(self):
        simulator = Simulator()
        order = []
        simulator.schedule(1.0, lambda: order.append("first"))
        simulator.schedule(1.0, lambda: order.append("second"))
        simulator.run()
        assert order == ["first", "second"]

    def test_clock_advances_to_event_time(self):
        simulator = Simulator()
        simulator.schedule(3.5, lambda: None)
        simulator.run()
        assert simulator.now == pytest.approx(3.5)

    def test_negative_delay_raises(self):
        with pytest.raises(NetworkError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        simulator = Simulator()
        times = []
        simulator.schedule_at(2.0, lambda: times.append(simulator.now))
        simulator.run()
        assert times == [2.0]

    def test_schedule_at_in_the_past_raises(self):
        simulator = Simulator()
        simulator.schedule(1.0, lambda: None)
        simulator.run()
        with pytest.raises(NetworkError):
            simulator.schedule_at(0.5, lambda: None)

    def test_events_can_schedule_more_events(self):
        simulator = Simulator()
        seen = []

        def first():
            seen.append("first")
            simulator.schedule(1.0, lambda: seen.append("second"))

        simulator.schedule(1.0, first)
        simulator.run()
        assert seen == ["first", "second"]
        assert simulator.now == pytest.approx(2.0)


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        simulator = Simulator()
        seen = []
        simulator.schedule(1.0, lambda: seen.append(1))
        simulator.schedule(10.0, lambda: seen.append(2))
        simulator.run(until=5.0)
        assert seen == [1]
        assert simulator.now == pytest.approx(5.0)
        simulator.run()
        assert seen == [1, 2]

    def test_run_until_advances_clock_when_queue_empty(self):
        simulator = Simulator()
        simulator.run(until=42.0)
        assert simulator.now == pytest.approx(42.0)

    def test_max_events_budget(self):
        simulator = Simulator()
        seen = []
        for index in range(5):
            simulator.schedule(index + 1.0, lambda i=index: seen.append(i))
        processed = simulator.run(max_events=2)
        assert processed == 2
        assert seen == [0, 1]

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_cancelled_events_do_not_run(self):
        simulator = Simulator()
        seen = []
        event = simulator.schedule(1.0, lambda: seen.append("cancelled"))
        simulator.schedule(2.0, lambda: seen.append("kept"))
        event.cancel()
        simulator.run()
        assert seen == ["kept"]

    def test_processed_and_pending_counters(self):
        simulator = Simulator()
        simulator.schedule(1.0, lambda: None)
        simulator.schedule(2.0, lambda: None)
        assert simulator.pending_events == 2
        simulator.run()
        assert simulator.processed_events == 2
        assert simulator.pending_events == 0

    def test_reset(self):
        simulator = Simulator()
        simulator.schedule(1.0, lambda: None)
        simulator.run()
        simulator.reset()
        assert simulator.now == 0.0
        assert simulator.pending_events == 0
        assert simulator.processed_events == 0
