"""Unit tests for repro.network.faults and the MessageBus fault hooks."""

import dataclasses
import random

import pytest

from repro.exceptions import ConfigurationError
from repro.network.faults import (
    DomainFailureEvent,
    ExpiringSet,
    FaultInjector,
    FaultPlan,
    FlashCrowdEvent,
    LinkFaults,
    MassacreEvent,
    PartitionEvent,
    backoff_total,
)
from repro.network.messages import Message, MessageType
from repro.network.overlay import Overlay
from repro.network.topology import TopologyConfig
from repro.network.transport import MessageBus


class TestExpiringSet:
    def test_add_if_new_and_duplicate(self):
        seen = ExpiringSet(ttl_seconds=10.0)
        assert seen.add_if_new("a", now=0.0) is True
        assert seen.add_if_new("a", now=5.0) is False
        assert "a" in seen
        assert len(seen) == 1

    def test_members_lapse_after_ttl(self):
        seen = ExpiringSet(ttl_seconds=10.0)
        seen.add_if_new("a", now=0.0)
        assert seen.add_if_new("a", now=20.0) is True

    def test_duplicate_refreshes_window(self):
        seen = ExpiringSet(ttl_seconds=10.0)
        seen.add_if_new("a", now=0.0)
        seen.add_if_new("a", now=8.0)  # refresh
        assert seen.add_if_new("a", now=15.0) is False  # still inside window

    def test_prune_drops_old_members(self):
        seen = ExpiringSet(ttl_seconds=5.0)
        seen.add_if_new("a", now=0.0)
        seen.add_if_new("b", now=4.0)
        seen.prune(now=7.0)
        assert "a" not in seen
        assert "b" in seen

    def test_rejects_non_positive_ttl(self):
        with pytest.raises(ConfigurationError):
            ExpiringSet(ttl_seconds=0.0)


class TestPlanValidation:
    def test_rejects_bad_probabilities(self):
        with pytest.raises(ConfigurationError):
            LinkFaults(drop_probability=1.5)
        with pytest.raises(ConfigurationError):
            LinkFaults(duplicate_probability=-0.1)
        with pytest.raises(ConfigurationError):
            LinkFaults(delay_jitter_ms=-1.0)

    def test_rejects_heal_before_split(self):
        with pytest.raises(ConfigurationError):
            PartitionEvent(at=100.0, heal_at=50.0)

    def test_rejects_bad_counts(self):
        with pytest.raises(ConfigurationError):
            DomainFailureEvent(at=0.0, count=0)
        with pytest.raises(ConfigurationError):
            MassacreEvent(at=0.0, rejoin_after=0.0)
        with pytest.raises(ConfigurationError):
            FlashCrowdEvent(at=0.0, rejoin_count=-1)

    def test_any_faults(self):
        assert FaultPlan().any_faults() is False
        assert FaultPlan(link=LinkFaults(drop_probability=0.1)).any_faults()
        assert FaultPlan(partitions=[PartitionEvent(at=1.0)]).any_faults()

    def test_lists_are_normalised_to_tuples(self):
        plan = FaultPlan(
            partitions=[PartitionEvent(at=1.0, groups=[["a"], ["b", "c"]])],
            massacres=[MassacreEvent(at=2.0)],
        )
        assert isinstance(plan.partitions, tuple)
        assert isinstance(plan.partitions[0].groups[0], tuple)
        # asdict-able: session caches key scenarios by dataclasses.asdict.
        payload = dataclasses.asdict(plan)
        assert payload["partitions"][0]["at"] == 1.0


class TestPlanPayload:
    def test_roundtrip(self):
        plan = FaultPlan(
            seed=7,
            link=LinkFaults(
                drop_probability=0.1, duplicate_probability=0.05, delay_jitter_ms=20.0
            ),
            partitions=[
                PartitionEvent(at=10.0, fraction=0.3, heal_at=50.0),
                PartitionEvent(at=60.0, groups=[["a", "b"], ["c"]]),
            ],
            domain_failures=[DomainFailureEvent(at=5.0, count=2)],
            massacres=[MassacreEvent(at=9.0, fraction=0.25, rejoin_after=30.0)],
            flash_crowds=[FlashCrowdEvent(at=99.0, rejoin_count=4)],
        )
        assert FaultPlan.from_payload(plan.to_payload()) == plan

    def test_empty_roundtrip(self):
        assert FaultPlan.from_payload(FaultPlan().to_payload()) == FaultPlan()


class TestFaultInjector:
    def test_partition_reachability(self):
        injector = FaultInjector(FaultPlan())
        assert injector.partitioned is False
        injector.set_partition([["a", "b"], ["c"]])
        assert injector.partitioned
        assert injector.reachable("a", "b")
        assert not injector.reachable("a", "c")
        # Peers outside every group (joined after the split) reach everyone.
        assert injector.reachable("a", "newcomer")
        injector.clear_partition()
        assert injector.reachable("a", "c")

    def test_partition_groups_sorted(self):
        injector = FaultInjector(FaultPlan())
        injector.set_partition([["b", "a"], ["c"]])
        assert injector.partition_groups() == [["a", "b"], ["c"]]

    def test_partitioned_delivery_draws_nothing(self):
        injector = FaultInjector(FaultPlan(seed=3))
        injector.set_partition([["a"], ["b"]])
        before = injector.rng.getstate()
        delivered, retries = injector.attempt_delivery("a", "b", max_retries=2)
        assert delivered is False
        assert retries == 2
        assert injector.rng.getstate() == before
        assert injector.stats.messages_dropped == 3
        assert injector.stats.retries == 2

    def test_clean_link_delivery_draws_nothing(self):
        injector = FaultInjector(FaultPlan(seed=3))
        before = injector.rng.getstate()
        assert injector.attempt_delivery("a", "b", max_retries=5) == (True, 0)
        assert injector.rng.getstate() == before
        assert injector.stats.messages_dropped == 0

    def test_lossy_delivery_retries_deterministically(self):
        plan = FaultPlan(seed=11, link=LinkFaults(drop_probability=0.5))
        first = FaultInjector(plan)
        second = FaultInjector(plan)
        outcomes_a = [first.attempt_delivery("a", "b", 3) for _ in range(50)]
        outcomes_b = [second.attempt_delivery("a", "b", 3) for _ in range(50)]
        assert outcomes_a == outcomes_b
        assert any(retries for _ok, retries in outcomes_a)

    def test_certain_loss_exhausts_budget(self):
        injector = FaultInjector(FaultPlan(link=LinkFaults(drop_probability=1.0)))
        delivered, retries = injector.attempt_delivery("a", "b", max_retries=4)
        assert delivered is False
        assert retries == 4
        assert injector.stats.messages_dropped == 5

    def test_state_roundtrip_mid_stream(self):
        plan = FaultPlan(seed=5, link=LinkFaults(drop_probability=0.3))
        injector = FaultInjector(plan)
        for _ in range(7):
            injector.attempt_delivery("a", "b", 2)
        injector.set_partition([["a"], ["b"]])
        restored = FaultInjector.from_state(injector.state_payload())
        assert restored.plan == injector.plan
        assert restored.partition_groups() == injector.partition_groups()
        assert restored.stats == injector.stats
        # Continuation draws match exactly.
        assert [restored.rng.random() for _ in range(5)] == [
            injector.rng.random() for _ in range(5)
        ]

    def test_backoff_total(self):
        assert backoff_total(2.0, 2.0, 0) == 0.0
        assert backoff_total(2.0, 2.0, 3) == 2.0 + 4.0 + 8.0
        assert backoff_total(1.0, 1.0, 2) == 2.0


def _bus(faults=None, peer_count=8, seed=0):
    overlay = Overlay.generate(
        TopologyConfig(peer_count=peer_count, average_degree=3.0, seed=seed)
    )
    bus = MessageBus(overlay, faults=faults)
    return overlay, bus


def _message(source, destination):
    return Message(
        type=MessageType.PUSH, source=source, destination=destination, payload={}
    )


class TestMessageBusFaults:
    def test_zero_fault_bus_unchanged(self):
        overlay, bus = _bus()
        ids = overlay.peer_ids
        received = []
        bus.register(ids[1], lambda message, now: received.append(message))
        record = bus.send(_message(ids[0], ids[1]))
        bus.run()
        assert not record.dropped
        assert received
        assert bus.counter.dropped_total == 0
        assert bus.counter.duplicate_total == 0

    def test_partitioned_send_dropped_with_reason(self):
        injector = FaultInjector(FaultPlan())
        overlay, bus = _bus(faults=injector)
        ids = overlay.peer_ids
        injector.set_partition([[ids[0]], ids[1:]])
        record = bus.send(_message(ids[0], ids[1]))
        assert record.dropped
        assert record.reason == "partitioned"
        assert record.delivered_at is None
        assert bus.counter.dropped_by_reason() == {"partitioned": 1}
        assert injector.stats.messages_dropped == 1

    def test_certain_loss_dropped_with_reason(self):
        injector = FaultInjector(FaultPlan(link=LinkFaults(drop_probability=1.0)))
        overlay, bus = _bus(faults=injector)
        ids = overlay.peer_ids
        record = bus.send(_message(ids[0], ids[1]))
        assert record.dropped
        assert record.reason == "message loss"
        assert bus.counter.dropped_by_reason() == {"message loss": 1}

    def test_offline_destination_counted(self):
        overlay, bus = _bus()
        ids = overlay.peer_ids
        overlay.peer(ids[1]).go_offline()
        record = bus.send(_message(ids[0], ids[1]))
        bus.run()
        assert record.dropped
        assert record.reason == "destination offline"
        assert bus.counter.dropped_by_reason() == {"destination offline": 1}

    def test_duplicates_are_delivered_once(self):
        injector = FaultInjector(
            FaultPlan(seed=1, link=LinkFaults(duplicate_probability=1.0))
        )
        overlay, bus = _bus(faults=injector)
        ids = overlay.peer_ids
        received = []
        bus.register(ids[1], lambda message, now: received.append(message))
        bus.send(_message(ids[0], ids[1]))
        bus.run()
        assert len(received) == 1  # the copy was suppressed at the receiver
        assert bus.counter.duplicate_total == 1
        assert injector.stats.messages_duplicated == 1
        duplicates = [r for r in bus.deliveries if r.reason == "duplicate suppressed"]
        assert len(duplicates) == 1

    def test_jitter_delays_delivery(self):
        injector = FaultInjector(
            FaultPlan(seed=2, link=LinkFaults(delay_jitter_ms=500.0))
        )
        overlay, jittered = _bus(faults=injector)
        _overlay2, plain = _bus()
        ids = overlay.peer_ids
        jit = jittered.send(_message(ids[0], ids[1]))
        base = plain.send(_message(ids[0], ids[1]))
        jittered.run()
        plain.run()
        assert jit.delivered_at > base.delivered_at

    def test_send_with_retry_eventually_delivers(self):
        injector = FaultInjector(
            FaultPlan(seed=4, link=LinkFaults(drop_probability=0.6))
        )
        overlay, bus = _bus(faults=injector)
        ids = overlay.peer_ids
        received = []
        bus.register(ids[1], lambda message, now: received.append(message))
        delivered = 0
        for _ in range(20):
            record = bus.send_with_retry(
                _message(ids[0], ids[1]), max_retries=6, backoff_seconds=0.1
            )
            if not record.dropped:
                delivered += 1
        bus.run()
        assert delivered == 20  # p_fail = 0.6**7 per message: all get through
        assert bus.counter.retry_total > 0
        assert injector.stats.backoff_seconds > 0
        assert len(received) == 20  # retransmissions never double-deliver

    def test_send_with_retry_gives_up_on_partition(self):
        injector = FaultInjector(FaultPlan())
        overlay, bus = _bus(faults=injector)
        ids = overlay.peer_ids
        injector.set_partition([[ids[0]], ids[1:]])
        record = bus.send_with_retry(_message(ids[0], ids[1]), max_retries=2)
        assert record.dropped
        assert record.reason == "partitioned"
        assert bus.counter.retry_total == 2

    def test_send_with_retry_without_faults_is_plain_send(self):
        overlay, bus = _bus()
        ids = overlay.peer_ids
        record = bus.send_with_retry(_message(ids[0], ids[1]))
        assert not record.dropped
        assert bus.counter.retry_total == 0


class TestCounterFaultColumns:
    def test_state_payload_omits_zero_fault_keys(self):
        overlay, bus = _bus()
        payload = bus.counter.state_payload()
        assert "dropped" not in payload
        assert "duplicates" not in payload
        assert "retries" not in payload

    def test_state_payload_roundtrips_fault_keys(self):
        from repro.network.metrics import MessageCounter

        counter = MessageCounter()
        counter.record_dropped("message loss", 3)
        counter.record_dropped("partitioned")
        counter.record_duplicate(2)
        counter.record_retry(5)
        restored = MessageCounter.from_state(counter.state_payload())
        assert restored.dropped_total == 4
        assert restored.dropped_by_reason() == {"message loss": 3, "partitioned": 1}
        assert restored.duplicate_total == 2
        assert restored.retry_total == 5
