"""Unit tests for the superpeer overlay."""

import random

import pytest

from repro.exceptions import NetworkError
from repro.network.overlay import Overlay
from repro.network.peer import PeerRole
from repro.network.topology import TopologyConfig


class TestBasicAccess:
    def test_size_and_peer_ids(self, small_overlay):
        assert small_overlay.size == 32
        assert len(small_overlay.peer_ids) == 32

    def test_peer_lookup(self, small_overlay):
        peer = small_overlay.peer("p0")
        assert peer.peer_id == "p0"
        assert peer.online

    def test_unknown_peer_raises(self, small_overlay):
        with pytest.raises(NetworkError):
            small_overlay.peer("p999")

    def test_neighbors_are_symmetric(self, small_overlay):
        for peer_id in small_overlay.peer_ids[:10]:
            for neighbour in small_overlay.neighbors(peer_id):
                assert peer_id in small_overlay.neighbors(neighbour)

    def test_neighbors_exclude_offline(self, small_overlay):
        peer_id = small_overlay.peer_ids[0]
        neighbours = small_overlay.neighbors(peer_id)
        victim = neighbours[0]
        small_overlay.peer(victim).go_offline()
        assert victim not in small_overlay.neighbors(peer_id)
        assert victim in small_overlay.neighbors(peer_id, online_only=False)

    def test_degree_and_average_degree(self, small_overlay):
        degrees = [small_overlay.degree(p) for p in small_overlay.peer_ids]
        assert min(degrees) >= 1
        assert small_overlay.average_degree() == pytest.approx(
            sum(degrees) / len(degrees)
        )

    def test_latency_direct_and_multi_hop(self, small_overlay):
        source = small_overlay.peer_ids[0]
        neighbour = small_overlay.neighbors(source)[0]
        assert small_overlay.latency(source, neighbour) > 0
        assert small_overlay.latency(source, source) == 0.0
        far = small_overlay.peer_ids[-1]
        assert small_overlay.latency(source, far) >= 0

    def test_empty_graph_raises(self):
        import networkx as nx

        with pytest.raises(NetworkError):
            Overlay(nx.Graph())


class TestSuperpeerElection:
    def test_elect_by_fraction(self, medium_overlay):
        elected = medium_overlay.elect_superpeers(fraction=1 / 16)
        assert len(elected) == round(120 / 16)
        assert all(medium_overlay.peer(sp).is_superpeer for sp in elected)

    def test_elect_by_count(self, medium_overlay):
        elected = medium_overlay.elect_superpeers(count=5)
        assert len(elected) == 5
        assert len(medium_overlay.superpeers()) == 5

    def test_elected_are_highest_degree(self, medium_overlay):
        elected = medium_overlay.elect_superpeers(count=3)
        degrees = {p: medium_overlay.degree(p) for p in medium_overlay.peer_ids}
        threshold = sorted(degrees.values(), reverse=True)[2]
        assert all(degrees[sp] >= threshold for sp in elected)

    def test_count_and_fraction_together_raise(self, medium_overlay):
        with pytest.raises(NetworkError):
            medium_overlay.elect_superpeers(count=3, fraction=0.1)

    def test_re_election_resets_roles(self, medium_overlay):
        first = medium_overlay.elect_superpeers(count=5)
        second = medium_overlay.elect_superpeers(count=2)
        assert len(medium_overlay.superpeers()) == 2
        for peer_id in set(first) - set(second):
            assert medium_overlay.peer(peer_id).role is PeerRole.PEER


class TestReachability:
    def test_within_ttl_excludes_origin(self, small_overlay):
        origin = small_overlay.peer_ids[0]
        reached = small_overlay.within_ttl(origin, 2)
        assert origin not in reached
        assert all(1 <= hops <= 2 for hops in reached.values())

    def test_within_ttl_grows_with_ttl(self, medium_overlay):
        origin = medium_overlay.peer_ids[0]
        assert len(medium_overlay.within_ttl(origin, 1)) <= len(
            medium_overlay.within_ttl(origin, 3)
        )

    def test_within_ttl_zero_is_empty(self, small_overlay):
        assert small_overlay.within_ttl(small_overlay.peer_ids[0], 0) == {}

    def test_negative_ttl_raises(self, small_overlay):
        with pytest.raises(NetworkError):
            small_overlay.within_ttl(small_overlay.peer_ids[0], -1)

    def test_flood_message_count_at_least_reached(self, medium_overlay):
        origin = medium_overlay.peer_ids[0]
        messages = medium_overlay.flood_message_count(origin, 3)
        reached = len(medium_overlay.within_ttl(origin, 3))
        assert messages >= reached

    def test_flood_zero_ttl_is_zero(self, small_overlay):
        assert small_overlay.flood_message_count(small_overlay.peer_ids[0], 0) == 0


class TestSelectiveWalk:
    def test_walk_finds_target(self, medium_overlay):
        rng = random.Random(0)
        target_set = set(medium_overlay.elect_superpeers(count=3))
        origin = next(
            p for p in medium_overlay.peer_ids if p not in target_set
        )
        found, hops = medium_overlay.selective_walk(
            origin, lambda p: p in target_set, rng=rng
        )
        assert found in target_set
        assert hops >= 1

    def test_walk_stops_immediately_if_origin_matches(self, small_overlay):
        origin = small_overlay.peer_ids[0]
        found, hops = small_overlay.selective_walk(origin, lambda p: True)
        assert found == origin
        assert hops == 0

    def test_walk_gives_up_after_max_hops(self, small_overlay):
        found, hops = small_overlay.selective_walk(
            small_overlay.peer_ids[0], lambda p: False, max_hops=5
        )
        assert found is None
        assert hops == 5

    def test_default_walks_can_diverge_on_ties(self):
        """Regression: default-RNG walks used to replay identical tie-breaks.

        On a regular graph every hop is a degree tie.  With a fresh
        ``Random(0)`` per call, two default walks from the same origin were
        forced down the same path forever; drawing from the overlay's shared,
        advancing RNG lets repeated walks explore different tie-breaks.
        """
        import networkx as nx

        graph = nx.complete_graph(8)
        for edge in graph.edges:
            graph.edges[edge]["latency"] = 10.0
        overlay = Overlay(
            nx.relabel_nodes(graph, {n: f"p{n}" for n in graph.nodes})
        )

        def traced_walk():
            path = []

            def record(peer_id):
                path.append(peer_id)
                return False

            overlay.selective_walk("p0", record, max_hops=6)
            return path

        first, second = traced_walk(), traced_walk()
        assert first[0] == second[0] == "p0"
        assert first != second

    def test_explicit_rng_still_reproducible(self):
        import networkx as nx

        graph = nx.complete_graph(8)
        for edge in graph.edges:
            graph.edges[edge]["latency"] = 10.0
        overlay = Overlay(
            nx.relabel_nodes(graph, {n: f"p{n}" for n in graph.nodes})
        )
        walks = [
            overlay.selective_walk(
                "p0", lambda p: False, max_hops=6, rng=random.Random(7)
            )
            for _ in range(2)
        ]
        assert walks[0] == walks[1]

    def test_walk_prefers_high_degree_neighbours(self, medium_overlay):
        origin = min(medium_overlay.peer_ids, key=medium_overlay.degree)
        rng = random.Random(1)
        found, hops = medium_overlay.selective_walk(
            origin, lambda p: p != origin, max_hops=1, rng=rng
        )
        assert hops == 1
        neighbour_degrees = [
            medium_overlay.degree(n) for n in medium_overlay.neighbors(origin)
        ]
        assert medium_overlay.degree(found) == max(neighbour_degrees)


class TestMembership:
    def test_add_peer(self, small_overlay):
        anchors = small_overlay.peer_ids[:2]
        node = small_overlay.add_peer("p_new", anchors, latency_ms=42.0)
        assert node.peer_id == "p_new"
        assert small_overlay.size == 33
        assert set(small_overlay.neighbors("p_new", online_only=False)) == set(anchors)

    def test_add_existing_peer_raises(self, small_overlay):
        with pytest.raises(NetworkError):
            small_overlay.add_peer("p0", [])

    def test_add_peer_with_unknown_neighbour_raises(self, small_overlay):
        with pytest.raises(NetworkError):
            small_overlay.add_peer("p_new", ["p999"])

    def test_remove_peer(self, small_overlay):
        small_overlay.remove_peer("p0")
        assert small_overlay.size == 31
        with pytest.raises(NetworkError):
            small_overlay.peer("p0")
