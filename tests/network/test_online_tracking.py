"""Incremental online-peer tracking on the overlay."""

from __future__ import annotations

from repro.network.overlay import Overlay
from repro.network.topology import TopologyConfig


def _scanned_online(overlay: Overlay) -> set:
    return {peer.peer_id for peer in overlay.peers() if peer.online}


class TestOnlineIds:
    def test_starts_with_everyone_online(self, small_overlay):
        assert small_overlay.online_ids == set(small_overlay.peer_ids)

    def test_tracks_go_offline_and_online(self, small_overlay):
        victims = small_overlay.peer_ids[:5]
        for victim in victims:
            small_overlay.peer(victim).go_offline()
        assert small_overlay.online_ids == _scanned_online(small_overlay)
        assert set(victims).isdisjoint(small_overlay.online_ids)
        small_overlay.peer(victims[0]).go_online()
        assert victims[0] in small_overlay.online_ids
        assert small_overlay.online_ids == _scanned_online(small_overlay)

    def test_tracks_direct_assignment(self, small_overlay):
        # Checkpoint restore writes the flag directly; the set must follow.
        victim = small_overlay.peer_ids[3]
        small_overlay.peer(victim).online = False
        assert victim not in small_overlay.online_ids
        small_overlay.peer(victim).online = True
        assert victim in small_overlay.online_ids

    def test_tracks_membership_changes(self, small_overlay):
        anchor = small_overlay.peer_ids[0]
        node = small_overlay.add_peer("newcomer", neighbors=[anchor])
        assert "newcomer" in small_overlay.online_ids
        node.go_offline()
        assert "newcomer" not in small_overlay.online_ids
        node.go_online()
        small_overlay.remove_peer("newcomer")
        assert "newcomer" not in small_overlay.online_ids
        assert small_overlay.online_ids == _scanned_online(small_overlay)
        # The removed node's writes no longer reach the overlay.
        node.go_offline()
        assert small_overlay.online_ids == _scanned_online(small_overlay)

    def test_consistent_under_simulated_churn(self):
        from repro.core.session import SystemBuilder

        session = (
            SystemBuilder()
            .topology(peer_count=64, average_degree=4)
            .planned_content(hit_rate=0.1)
            .churn(duration_seconds=2 * 3600.0, downtime_seconds=300.0)
            .seed(13)
            .build()
        )
        overlay = session.overlay
        for hour in (0.5, 1.0, 1.5, 2.0):
            session.run_until(hour * 3600.0)
            assert overlay.online_ids == _scanned_online(overlay), hour

    def test_consistent_after_checkpoint_restore(self):
        from repro.core.session import SystemBuilder
        from repro.store.backend import InMemoryBackend

        session = (
            SystemBuilder()
            .topology(peer_count=48, average_degree=4)
            .planned_content(hit_rate=0.1)
            .churn(duration_seconds=3600.0)
            .seed(5)
            .build()
        )
        session.run_until(1800.0)
        store = InMemoryBackend()
        session.checkpoint(store)
        restored = SystemBuilder.from_checkpoint(store)
        assert restored.overlay.online_ids == _scanned_online(restored.overlay)
        assert restored.overlay.online_ids == session.overlay.online_ids
        # The set keeps tracking after restore.
        restored.run_until(3600.0)
        assert restored.overlay.online_ids == _scanned_online(restored.overlay)


class TestListenerLifecycle:
    def test_standalone_peer_node_needs_no_listener(self):
        from repro.network.peer import PeerNode

        node = PeerNode(peer_id="loner")
        node.go_offline()
        node.go_online()
        assert node.online

    def test_generated_overlay_is_wired(self):
        overlay = Overlay.generate(TopologyConfig(peer_count=16, seed=3))
        victim = overlay.peer_ids[0]
        overlay.peer(victim).go_offline()
        assert victim not in overlay.online_ids
