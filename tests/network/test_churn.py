"""Unit tests for the churn (lifetime) model."""

import random
import statistics

import pytest

from repro.exceptions import ConfigurationError
from repro.network.churn import ChurnSchedule, LifetimeDistribution


class TestLifetimeDistribution:
    def test_default_parameters_match_table3(self):
        distribution = LifetimeDistribution()
        assert distribution.expected_mean() == pytest.approx(3 * 3600.0, rel=1e-9)
        assert distribution.expected_median() == pytest.approx(3600.0, rel=1e-9)

    def test_sampled_median_close_to_target(self):
        distribution = LifetimeDistribution()
        rng = random.Random(0)
        samples = distribution.sample_many(4000, rng)
        assert statistics.median(samples) == pytest.approx(3600.0, rel=0.15)

    def test_sampled_mean_close_to_target(self):
        distribution = LifetimeDistribution()
        rng = random.Random(1)
        samples = distribution.sample_many(20000, rng)
        assert statistics.fmean(samples) == pytest.approx(3 * 3600.0, rel=0.25)

    def test_distribution_is_right_skewed(self):
        distribution = LifetimeDistribution()
        rng = random.Random(2)
        samples = distribution.sample_many(5000, rng)
        assert statistics.fmean(samples) > statistics.median(samples)

    def test_invalid_median_raises(self):
        with pytest.raises(ConfigurationError):
            LifetimeDistribution(median_seconds=0)

    def test_mean_below_median_raises(self):
        with pytest.raises(ConfigurationError):
            LifetimeDistribution(mean_seconds=100, median_seconds=200)

    def test_degenerate_distribution(self):
        distribution = LifetimeDistribution(mean_seconds=60, median_seconds=60)
        assert distribution.sigma == 0.0
        assert distribution.sample(random.Random(0)) == 60

    def test_staleness_probability_monotone(self):
        distribution = LifetimeDistribution()
        assert distribution.staleness_probability(0) == 0.0
        short = distribution.staleness_probability(600)
        long = distribution.staleness_probability(6 * 3600)
        assert 0.0 <= short < long <= 1.0

    def test_staleness_probability_at_median_is_half(self):
        distribution = LifetimeDistribution()
        assert distribution.staleness_probability(3600.0) == pytest.approx(0.5, abs=1e-6)


class TestChurnSchedule:
    def test_draw_produces_one_lifetime_per_peer(self):
        schedule = ChurnSchedule.draw(peer_count=50, seed=3)
        assert len(schedule.lifetimes) == 50
        assert all(lifetime > 0 for lifetime in schedule.lifetimes)

    def test_lifetime_of_wraps_around(self):
        schedule = ChurnSchedule.draw(peer_count=5, seed=4)
        assert schedule.lifetime_of(7) == schedule.lifetimes[2]

    def test_reproducible_with_seed(self):
        first = ChurnSchedule.draw(peer_count=10, seed=5)
        second = ChurnSchedule.draw(peer_count=10, seed=5)
        assert first.lifetimes == second.lifetimes
