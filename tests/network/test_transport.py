"""Unit tests for the latency-aware message bus."""

import pytest

from repro.exceptions import NetworkError
from repro.network.messages import Message, MessageType
from repro.network.overlay import Overlay
from repro.network.topology import TopologyConfig
from repro.network.transport import MessageBus


@pytest.fixture
def bus(small_overlay):
    return MessageBus(small_overlay)


class TestDelivery:
    def test_message_delivered_after_latency(self, small_overlay, bus):
        source = small_overlay.peer_ids[0]
        destination = small_overlay.neighbors(source)[0]
        received = []
        bus.register(destination, lambda message, at: received.append((message, at)))
        bus.send(Message(MessageType.QUERY, source, destination))
        assert received == []  # nothing happens before the simulator runs
        bus.run()
        assert len(received) == 1
        message, at = received[0]
        assert message.type is MessageType.QUERY
        assert at == pytest.approx(small_overlay.latency(source, destination) / 1000.0)

    def test_per_type_handler_takes_precedence(self, small_overlay, bus):
        source = small_overlay.peer_ids[0]
        destination = small_overlay.neighbors(source)[0]
        typed, generic = [], []
        bus.register(destination, lambda m, t: generic.append(m))
        bus.register(destination, lambda m, t: typed.append(m), MessageType.PUSH)
        bus.send(Message(MessageType.PUSH, source, destination))
        bus.send(Message(MessageType.QUERY, source, destination))
        bus.run()
        assert len(typed) == 1 and typed[0].type is MessageType.PUSH
        assert len(generic) == 1 and generic[0].type is MessageType.QUERY

    def test_message_to_offline_peer_is_dropped(self, small_overlay, bus):
        source = small_overlay.peer_ids[0]
        destination = small_overlay.neighbors(source)[0]
        bus.register(destination, lambda m, t: None)
        small_overlay.peer(destination).go_offline()
        record = bus.send(Message(MessageType.PUSH, source, destination))
        bus.run()
        assert record.dropped
        assert record.reason == "destination offline"
        assert bus.dropped_count() == 1

    def test_message_without_handler_is_dropped(self, small_overlay, bus):
        source = small_overlay.peer_ids[0]
        destination = small_overlay.neighbors(source)[0]
        record = bus.send(Message(MessageType.PUSH, source, destination))
        bus.run()
        assert record.dropped
        assert record.reason == "no handler"

    def test_counter_records_every_transmission(self, small_overlay, bus):
        source = small_overlay.peer_ids[0]
        destination = small_overlay.neighbors(source)[0]
        bus.send(Message(MessageType.PUSH, source, destination))
        bus.send(Message(MessageType.QUERY, source, destination))
        assert bus.counter.total == 2

    def test_register_unknown_peer_raises(self, bus):
        with pytest.raises(NetworkError):
            bus.register("ghost", lambda m, t: None)

    def test_unregister(self, small_overlay, bus):
        source = small_overlay.peer_ids[0]
        destination = small_overlay.neighbors(source)[0]
        received = []
        bus.register(destination, lambda m, t: received.append(m))
        bus.unregister(destination)
        bus.send(Message(MessageType.QUERY, source, destination))
        bus.run()
        assert received == []


class TestBroadcast:
    def test_broadcast_reaches_ttl_neighbourhood(self):
        overlay = Overlay.generate(TopologyConfig(peer_count=40, seed=8))
        bus = MessageBus(overlay)
        received = set()
        for peer_id in overlay.peer_ids:
            bus.register(
                peer_id,
                lambda m, t, me=peer_id: received.add(me),
                MessageType.SUMPEER,
            )
        origin = overlay.peer_ids[0]
        sent = bus.broadcast(origin, MessageType.SUMPEER, payload={"sp": origin}, ttl=2)
        bus.run()
        assert sent == overlay.flood_message_count(origin, 2)
        assert received >= set(overlay.within_ttl(origin, 2))

    def test_broadcast_invalid_ttl_raises(self, small_overlay):
        bus = MessageBus(small_overlay)
        with pytest.raises(NetworkError):
            bus.broadcast(small_overlay.peer_ids[0], MessageType.SUMPEER, ttl=0)

    def test_deliveries_log(self, small_overlay):
        bus = MessageBus(small_overlay)
        source = small_overlay.peer_ids[0]
        destination = small_overlay.neighbors(source)[0]
        bus.register(destination, lambda m, t: None)
        bus.send(Message(MessageType.QUERY, source, destination))
        bus.run()
        assert bus.delivered_count() == 1
        assert len(bus.deliveries) == 1
