"""Unit tests for messages and traffic accounting."""

import pytest

from repro.network.messages import Message, MessageType
from repro.network.metrics import MessageCounter, TrafficReport


class TestMessage:
    def test_defaults(self):
        message = Message(MessageType.PUSH, "p1", "sp")
        assert message.ttl is None
        assert not message.expired()
        assert message.size_bytes == 1

    def test_ttl_expiry(self):
        message = Message(MessageType.FLOOD_QUERY, "p1", "p2", ttl=0)
        assert message.expired()

    def test_forwarded_decrements_ttl(self):
        message = Message(MessageType.FLOOD_QUERY, "p1", "p2", ttl=3, payload={"q": 1})
        forwarded = message.forwarded("p3")
        assert forwarded.ttl == 2
        assert forwarded.source == "p2"
        assert forwarded.destination == "p3"
        assert forwarded.payload == {"q": 1}

    def test_forwarded_without_ttl(self):
        message = Message(MessageType.QUERY, "p1", "p2")
        assert message.forwarded("p3").ttl is None

    def test_unique_message_ids(self):
        first = Message(MessageType.QUERY, "a", "b")
        second = Message(MessageType.QUERY, "a", "b")
        assert first.message_id != second.message_id


class TestMessageCounter:
    def test_record_and_count(self):
        counter = MessageCounter()
        counter.record(Message(MessageType.PUSH, "p1", "sp"))
        counter.record(Message(MessageType.PUSH, "p2", "sp"))
        counter.record(Message(MessageType.QUERY, "p1", "sp", size_bytes=10))
        assert counter.count(MessageType.PUSH) == 2
        assert counter.count() == 3
        assert counter.total == 3
        assert counter.total_bytes == 12

    def test_record_type_without_message(self):
        counter = MessageCounter()
        counter.record_type(MessageType.RECONCILIATION, 5)
        assert counter.count(MessageType.RECONCILIATION) == 5

    def test_count_types(self):
        counter = MessageCounter()
        counter.record_type(MessageType.PUSH, 2)
        counter.record_type(MessageType.QUERY, 3)
        assert counter.count_types([MessageType.PUSH, MessageType.QUERY]) == 5

    def test_by_sender(self):
        counter = MessageCounter()
        counter.record(Message(MessageType.PUSH, "p1", "sp"))
        counter.record(Message(MessageType.QUERY, "p1", "sp"))
        assert counter.by_sender()["p1"] == 2

    def test_merge(self):
        first, second = MessageCounter(), MessageCounter()
        first.record_type(MessageType.PUSH, 1)
        second.record_type(MessageType.PUSH, 2)
        first.merge(second)
        assert first.count(MessageType.PUSH) == 3

    def test_reset(self):
        counter = MessageCounter()
        counter.record_type(MessageType.PUSH, 4)
        counter.reset()
        assert counter.total == 0


class TestTrafficReport:
    def test_per_node_and_per_second(self):
        counter = MessageCounter()
        counter.record_type(MessageType.PUSH, 100)
        report = TrafficReport.from_counter(counter, duration_seconds=50, peer_count=10)
        assert report.total_messages == 100
        assert report.messages_per_node == pytest.approx(10.0)
        assert report.messages_per_node_per_second == pytest.approx(0.2)

    def test_filter_by_message_type(self):
        counter = MessageCounter()
        counter.record_type(MessageType.PUSH, 10)
        counter.record_type(MessageType.QUERY, 90)
        report = TrafficReport.from_counter(
            counter, 10, 10, message_types=[MessageType.PUSH]
        )
        assert report.total_messages == 10
        assert report.by_type[MessageType.PUSH] == 10

    def test_zero_peers_and_duration(self):
        report = TrafficReport(total_messages=5, duration_seconds=0, peer_count=0)
        assert report.messages_per_node == 0.0
        assert report.messages_per_node_per_second == 0.0
