"""S4: observability must not perturb the simulation.

Two invariants, pinned on a fig4-style benign scenario and the
``lossy-network`` chaos scenario:

* **Obs-enabled ≡ obs-absent** — a session with full-detail instrumentation
  installed produces byte-identical answers, message-counter payloads and
  RNG states to the same build without any observability.  Every
  instrumentation site is a pointer test plus read-only recording, so this
  holds exactly, not approximately.
* **Trace determinism** — two identically-seeded instrumented runs emit
  identical span trees once wall-clock fields are stripped
  (``Span.deterministic_payload``).
"""

import pytest

from repro.obs import Observability, RingBufferSink, Tracer
from repro.workloads.registry import default_registry

#: (scenario name, peers, horizon): a fig4-style benign run and the chaos run.
SCENARIOS = [
    ("table3-default", 48, 1800.0),
    ("lossy-network", None, None),
]


def _build(name, peers, horizon, observability=None):
    overrides = {}
    if peers is not None:
        overrides["peer_count"] = peers
    if horizon is not None:
        overrides["duration_seconds"] = horizon
    scenario = default_registry().scenario(name, **overrides)
    session = scenario.apply_dynamics(scenario.builder()).build()
    if observability is not None:
        session.install_observability(observability)
    return session


def _run_fingerprint(session, queries=6):
    session.run_until()
    answers = session.query_batch(count=queries, required_results=3)
    fingerprint = {
        "answers": answers,
        "counter": session.system.counter.state_payload(),
        "now": session.now,
    }
    content = session.content
    if content is not None and hasattr(content, "_rng"):
        fingerprint["content_rng"] = content._rng.getstate()  # noqa: SLF001
    faults = session.system.faults
    if faults is not None:
        fingerprint["faults_rng"] = faults.rng.getstate()
    return fingerprint


@pytest.mark.parametrize("name,peers,horizon", SCENARIOS)
def test_obs_enabled_run_is_byte_identical(name, peers, horizon):
    plain = _run_fingerprint(_build(name, peers, horizon))

    obs = Observability.with_ring(capacity=100_000, detail=True)
    instrumented_session = _build(name, peers, horizon, observability=obs)
    instrumented = _run_fingerprint(instrumented_session)

    assert instrumented["answers"] == plain["answers"]
    assert instrumented["counter"] == plain["counter"]
    assert instrumented["now"] == plain["now"]
    for key in ("content_rng", "faults_rng"):
        assert instrumented.get(key) == plain.get(key), f"{key} diverged"

    # The instrumented run must actually have recorded something, or the
    # comparison above proves nothing.
    assert obs.metrics.value("repro_queries_total") > 0
    assert obs.ring.emitted > 0


@pytest.mark.parametrize("name,peers,horizon", SCENARIOS)
def test_trace_is_deterministic_across_same_seed_runs(name, peers, horizon):
    trees = []
    for _run in range(2):
        sink = RingBufferSink(capacity=100_000)
        obs = Observability(tracer=Tracer(sink=sink), detail=True)
        session = _build(name, peers, horizon, observability=obs)
        _run_fingerprint(session)
        trees.append([span.deterministic_payload() for span in sink.spans()])
    assert trees[0], "instrumented run emitted no spans"
    assert trees[0] == trees[1]


def test_metrics_are_deterministic_across_same_seed_runs():
    snapshots = []
    for _run in range(2):
        obs = Observability.with_ring(detail=True)
        session = _build("lossy-network", None, None, observability=obs)
        _run_fingerprint(session)
        snapshots.append(obs.metrics.snapshot())
    assert snapshots[0] == snapshots[1]


def test_lossy_network_records_fault_metrics():
    obs = Observability.with_ring(detail=True)
    session = _build("lossy-network", None, None, observability=obs)
    _run_fingerprint(session)
    dropped = sum(
        obs.metrics.counter_series("repro_fault_dropped_total").values()
    )
    assert dropped > 0, "a 10% lossy network must record dropped messages"
