"""Serve-layer observability: /metrics, /trace, stats decode, span chain.

Holds the tentpole acceptance assertions: a single served query produces one
connected span tree from the client span through the server request span to
the session's routing and hierarchy-selection spans, and ``/metrics`` exposes
at least 12 distinct series spanning the protocol, store and serve layers.
"""

import pytest

from repro.exceptions import ServeError
from repro.obs import RingBufferSink, Span, Tracer, connected_trace, span_tree
from repro.obs.registry import parse_prometheus
from repro.serve import ServeClient, start_server
from repro.store.checkpoint import open_readonly_session, save_session
from repro.workloads.registry import default_registry


@pytest.fixture(scope="module")
def store_path(tmp_path_factory):
    scenario = default_registry().scenario(
        "table3-default", peer_count=32, duration_seconds=300.0
    )
    session = scenario.builder().build()
    path = tmp_path_factory.mktemp("obs-serve") / "obs.sqlite"
    save_session(session, str(path))
    return str(path)


@pytest.fixture
def served(store_path):
    session = open_readonly_session(store_path)
    server = start_server(session, close_session_on_stop=True)
    sink = RingBufferSink()
    client = ServeClient(server.url, tracer=Tracer(sink=sink))
    yield server, client, sink
    if not session.closed:
        server.stop()


def test_single_query_produces_connected_span_tree(served):
    server, client, sink = served
    client.query(required_results=3)

    client_spans = sink.spans()
    assert [span.name for span in client_spans] == ["client /query"]
    trace_id = client_spans[0].trace_id

    server_spans = [
        Span.from_payload(payload) for payload in client.trace()["spans"]
    ]
    spans = client_spans + [s for s in server_spans if s.trace_id == trace_id]
    names = {span.name for span in spans}
    # Client → HTTP worker → session query → per-domain routing → selection.
    assert {"client /query", "serve /query", "query", "route-domain",
            "hierarchy-selection"} <= names
    assert connected_trace(spans, trace_id)

    # And the parent chain is the advertised one, not merely connected.
    by_name = {span.name: span for span in spans}
    assert by_name["serve /query"].parent_id == by_name["client /query"].span_id
    assert by_name["query"].parent_id == by_name["serve /query"].span_id
    tree = span_tree(spans)
    assert any(
        s.name == "route-domain" for s in tree.get(by_name["query"].span_id, [])
    )
    assert all(
        any(s.name == "hierarchy-selection" for s in tree.get(rd.span_id, []))
        for rd in spans
        if rd.name == "route-domain"
    )


def test_metrics_exposes_all_layers(served):
    server, client, _sink = served
    client.query(required_results=3)
    client.stats()

    parsed = parse_prometheus(client.metrics())
    names = set(parsed)
    assert len(names) >= 12, sorted(names)
    protocol = {"repro_queries_total", "repro_query_messages_total",
                "repro_routing_domains_total"}
    store_layer = {"repro_session_lock_wait_seconds_count",
                   "repro_session_lock_hold_seconds_count"}
    serve_layer = {"repro_serve_requests_total", "repro_serve_uptime_seconds",
                   "repro_serve_request_seconds_count"}
    assert protocol <= names
    assert store_layer <= names
    assert serve_layer <= names


def test_trace_endpoint_tails_and_limits(served):
    server, client, _sink = served
    client.query(required_results=3)
    full = client.trace()
    assert full["emitted"] >= len(full["spans"]) > 0
    limited = client.trace(limit=2)
    assert len(limited["spans"]) == 2
    # Serving the first /trace call appended one more span to the ring, so
    # the limited tail is the full tail shifted by that request's own span.
    assert limited["spans"][0] == full["spans"][-1]
    assert limited["spans"][1]["name"] == "serve /trace"


def test_stats_decodes_lazy_and_uptime(served):
    server, client, _sink = served
    stats = client.stats()
    assert stats["uptime_seconds"] > 0
    lazy = stats["lazy"]
    assert set(lazy) == {"fetches", "hits", "evictions", "cached", "cache_size"}
    assert all(isinstance(value, int) for value in lazy.values())


def test_served_answers_match_untraced_client(served):
    """Header propagation must not change what the server computes."""
    server, client, _sink = served
    plain = ServeClient(server.url)
    assert client.query(required_results=3) == plain.query(required_results=3)


def test_no_obs_server_rejects_observability_endpoints(store_path):
    session = open_readonly_session(store_path)
    server = start_server(session, close_session_on_stop=True, observability=None)
    try:
        client = ServeClient(server.url)
        client.query(required_results=3)  # still answers queries
        with pytest.raises(ServeError, match="disabled"):
            client.metrics()
        with pytest.raises(ServeError, match="trace ring"):
            client.trace()
    finally:
        if not session.closed:
            server.stop()
