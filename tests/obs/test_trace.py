"""Tracer, sinks, span payloads, implicit parenting, connectivity checks."""

import json
import threading

from repro.obs.trace import (
    JsonlSink,
    NullSink,
    RingBufferSink,
    Span,
    Tracer,
    connected_trace,
    span_tree,
)


def test_span_ids_are_counters_not_randomness():
    tracer = Tracer(sink=NullSink(), origin="test")
    with tracer.span("a"):
        pass
    with tracer.span("b"):
        pass
    sink = RingBufferSink()
    tracer2 = Tracer(sink=sink, origin="test")
    with tracer2.span("a"):
        pass
    with tracer2.span("b"):
        pass
    first, second = sink.spans()
    assert first.trace_id == "test-t000001"
    assert first.span_id == "test-s000001"
    assert second.trace_id == "test-t000002"
    assert second.span_id == "test-s000002"


def test_nested_spans_parent_implicitly():
    sink = RingBufferSink()
    tracer = Tracer(sink=sink)
    with tracer.span("outer") as outer:
        with tracer.span("inner") as inner:
            assert tracer.current_span() is inner
        assert tracer.current_span() is outer
    assert tracer.current_span() is None

    emitted = {span.name: span for span in sink.spans()}
    assert emitted["inner"].parent_id == emitted["outer"].span_id
    assert emitted["inner"].trace_id == emitted["outer"].trace_id
    assert emitted["outer"].parent_id is None


def test_sibling_roots_get_distinct_traces():
    sink = RingBufferSink()
    tracer = Tracer(sink=sink)
    with tracer.span("first"):
        pass
    with tracer.span("second"):
        pass
    first, second = sink.spans()
    assert first.trace_id != second.trace_id


def test_adopted_remote_context_wins_over_stack():
    sink = RingBufferSink()
    tracer = Tracer(sink=sink, origin="server")
    with tracer.span(
        "serve /query", trace_id="client-t000001", parent_id="client-s000001"
    ):
        with tracer.span("query"):
            pass
    query, request = {s.name: s for s in sink.spans()}["query"], None
    spans = {s.name: s for s in sink.spans()}
    request = spans["serve /query"]
    assert request.trace_id == "client-t000001"
    assert request.parent_id == "client-s000001"
    assert spans["query"].trace_id == "client-t000001"
    assert spans["query"].parent_id == request.span_id
    assert query.span_id.startswith("server-")


def test_sim_clock_is_recorded_when_bound():
    sink = RingBufferSink()
    tracer = Tracer(sink=sink, sim_clock=lambda: 42.5)
    with tracer.span("op"):
        pass
    span = sink.spans()[0]
    assert span.start_sim == 42.5 and span.end_sim == 42.5
    assert span.end_wall >= span.start_wall > 0


def test_deterministic_payload_strips_wall_clock():
    tracer = Tracer(sink=NullSink(), sim_clock=lambda: 1.0)
    with tracer.span("op", {"k": "v"}) as span:
        pass
    payload = span.deterministic_payload()
    assert "start_wall" not in payload and "end_wall" not in payload
    full = span.to_payload()
    assert full["start_wall"] > 0
    assert Span.from_payload(full) == span


def test_ring_buffer_caps_and_counts():
    sink = RingBufferSink(capacity=3)
    tracer = Tracer(sink=sink)
    for index in range(5):
        with tracer.span(f"op{index}"):
            pass
    assert sink.emitted == 5
    assert [s.name for s in sink.spans()] == ["op2", "op3", "op4"]
    assert [s.name for s in sink.tail(2)] == ["op3", "op4"]
    sink.clear()
    assert sink.spans() == [] and sink.emitted == 5


def test_jsonl_sink_roundtrips(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    sink = JsonlSink(path)
    tracer = Tracer(sink=sink, sim_clock=lambda: 7.0)
    with tracer.span("outer"):
        with tracer.span("inner", {"n": 3}):
            pass
    sink.close()

    with open(path, encoding="utf-8") as handle:
        lines = [json.loads(line) for line in handle if line.strip()]
    assert len(lines) == 2
    spans = JsonlSink.read(path)
    assert {s.name for s in spans} == {"outer", "inner"}
    inner = next(s for s in spans if s.name == "inner")
    assert inner.attrs == {"n": 3}
    assert connected_trace(spans, spans[0].trace_id)


def test_span_tree_and_connectivity():
    sink = RingBufferSink()
    tracer = Tracer(sink=sink)
    with tracer.span("root"):
        with tracer.span("child"):
            pass
        with tracer.span("sibling"):
            pass
    spans = sink.spans()
    root = next(s for s in spans if s.name == "root")
    tree = span_tree(spans)
    assert {s.name for s in tree[root.span_id]} == {"child", "sibling"}
    assert connected_trace(spans, root.trace_id)
    assert not connected_trace(spans, "no-such-trace")


def test_tracing_is_thread_safe_and_stacks_are_per_thread():
    sink = RingBufferSink(capacity=10000)
    tracer = Tracer(sink=sink)

    def worker(tag):
        for index in range(50):
            with tracer.span(f"{tag}-outer{index}"):
                with tracer.span(f"{tag}-inner{index}"):
                    pass

    threads = [
        threading.Thread(target=worker, args=(f"w{n}",)) for n in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    spans = sink.spans()
    assert len(spans) == 4 * 50 * 2
    assert len({s.span_id for s in spans}) == len(spans), "span ids collided"
    by_id = {s.span_id: s for s in spans}
    for span in spans:
        if span.parent_id is not None:
            parent = by_id[span.parent_id]
            # A child must parent under its own thread's outer span.
            assert parent.name.split("-")[0] == span.name.split("-")[0]
