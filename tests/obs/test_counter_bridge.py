"""S2: ``MessageCounter.to_metrics`` bridges into the registry without
touching the counter's checkpoint payload."""

import copy

from repro.network.messages import Message, MessageType
from repro.network.metrics import MessageCounter
from repro.obs.registry import MetricsRegistry


def _loaded_counter() -> MessageCounter:
    counter = MessageCounter()
    counter.record_type(MessageType.QUERY, 7)
    counter.record_type(MessageType.PUSH, 2)
    counter.record(
        Message(
            type=MessageType.QUERY_RESPONSE,
            source="p3",
            destination="p1",
            size_bytes=128,
        )
    )
    counter.record_dropped("link loss", 3)
    counter.record_duplicate(2)
    counter.record_retry(4)
    return counter


def test_to_metrics_exports_every_counter_family():
    counter = _loaded_counter()
    registry = MetricsRegistry()
    counter.to_metrics(registry)

    assert registry.value("repro_messages_total", type=MessageType.QUERY.value) == 7
    assert registry.value("repro_messages_total", type=MessageType.PUSH.value) == 2
    assert registry.value("repro_messages_total", type=MessageType.QUERY_RESPONSE.value) == 1
    assert registry.value("repro_messages_bytes_total") == 128
    assert registry.value("repro_messages_dropped_total", reason="link loss") == 3
    assert registry.value("repro_messages_duplicates_total") == 2
    assert registry.value("repro_messages_retries_total") == 4


def test_to_metrics_custom_prefix():
    registry = MetricsRegistry()
    _loaded_counter().to_metrics(registry, prefix="run1_messages")
    assert registry.value("run1_messages_total", type=MessageType.QUERY.value) == 7
    assert all(name.startswith("run1_") for name in registry.series_names())


def test_bridge_leaves_state_payload_byte_identical():
    """The regression S2 pins: bridging is read-only over the counter."""
    counter = _loaded_counter()
    before = copy.deepcopy(counter.state_payload())
    counter.to_metrics(MetricsRegistry())
    assert counter.state_payload() == before
    # And a clean counter still omits the zero fault-layer keys afterwards.
    clean = MessageCounter()
    clean.record_type(MessageType.QUERY)
    baseline = copy.deepcopy(clean.state_payload())
    clean.to_metrics(MetricsRegistry())
    payload = clean.state_payload()
    assert payload == baseline
    assert "dropped" not in payload
    assert "duplicates" not in payload
    assert "retries" not in payload


def test_bridge_twice_is_additive_not_idempotent():
    """Documented contract: bridge once per counter lifetime."""
    counter = _loaded_counter()
    registry = MetricsRegistry()
    counter.to_metrics(registry)
    counter.to_metrics(registry)
    assert registry.value("repro_messages_total", type=MessageType.QUERY.value) == 14
