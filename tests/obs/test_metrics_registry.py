"""MetricsRegistry: counters, gauges, histograms, snapshot/merge, exposition."""

import threading

import pytest

from repro.exceptions import ConfigurationError
from repro.obs.registry import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    MetricsRegistry,
    parse_prometheus,
)


def test_counters_accumulate_per_label_set():
    registry = MetricsRegistry()
    registry.inc("msgs_total")
    registry.inc("msgs_total", 4)
    registry.inc("msgs_total", 2, type="push")
    registry.inc("msgs_total", type="push")
    assert registry.value("msgs_total") == 5
    assert registry.value("msgs_total", type="push") == 3
    assert registry.value("never_touched_total") == 0


def test_label_order_does_not_matter():
    registry = MetricsRegistry()
    registry.inc("m", a="1", b="2")
    registry.inc("m", b="2", a="1")
    assert registry.value("m", b="2", a="1") == 2


def test_gauges_overwrite():
    registry = MetricsRegistry()
    registry.set_gauge("uptime_seconds", 1.5)
    registry.set_gauge("uptime_seconds", 9.0)
    assert registry.gauge_value("uptime_seconds") == 9.0
    assert registry.gauge_value("absent") is None


def test_histogram_buckets_and_overflow():
    registry = MetricsRegistry()
    registry.declare_histogram("h", [1.0, 10.0])
    for value in (0.5, 0.7, 5.0, 100.0):
        registry.observe("h", value)
    histogram = registry.histogram("h")
    assert histogram.total_count == 4
    assert histogram.total_sum == pytest.approx(106.2)
    assert histogram.counts == [2, 1, 1]  # <=1, <=10, +Inf overflow
    assert histogram.cumulative() == [2, 3]


def test_observe_many_equals_observe_loop():
    one_by_one, batched = MetricsRegistry(), MetricsRegistry()
    values = [0.2, 3.0, 7.5, 0.2, 40.0]
    for registry in (one_by_one, batched):
        registry.declare_histogram("h", DEFAULT_COUNT_BUCKETS)
    for value in values:
        one_by_one.observe("h", value)
    batched.observe_many("h", values)
    assert one_by_one.histogram("h") == batched.histogram("h")


def test_undeclared_histogram_gets_default_time_buckets():
    registry = MetricsRegistry()
    registry.observe("latency_seconds", 0.2)
    assert registry.histogram("latency_seconds").buckets == tuple(
        DEFAULT_TIME_BUCKETS
    )


def test_snapshot_merge_is_additive():
    a, b = MetricsRegistry(), MetricsRegistry()
    for registry, count in ((a, 2), (b, 5)):
        registry.inc("msgs_total", count, type="query")
        registry.declare_histogram("h", [1.0, 2.0])
        registry.observe("h", 0.5)
    merged = MetricsRegistry()
    merged.merge_snapshot(a.snapshot())
    merged.merge_snapshot(b.snapshot())
    assert merged.value("msgs_total", type="query") == 7
    assert merged.histogram("h").total_count == 2


def test_merge_rejects_mismatched_buckets():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.declare_histogram("h", [1.0])
    b.declare_histogram("h", [2.0])
    a.observe("h", 0.5)
    b.observe("h", 0.5)
    with pytest.raises(ConfigurationError):
        a.merge_snapshot(b.snapshot())


def test_render_parse_roundtrip():
    registry = MetricsRegistry()
    registry.inc("reqs_total", 3, endpoint="/query")
    registry.inc("reqs_total", 1, endpoint="/stats")
    registry.set_gauge("uptime_seconds", 12.5)
    registry.declare_histogram("latency_seconds", [0.1, 1.0])
    registry.observe("latency_seconds", 0.05)
    registry.observe("latency_seconds", 0.5)

    parsed = parse_prometheus(registry.render_prometheus())
    assert parsed["reqs_total"]['reqs_total{endpoint="/query"}'] == 3
    assert parsed["uptime_seconds"]["uptime_seconds"] == 12.5
    assert parsed["latency_seconds_bucket"]['latency_seconds_bucket{le="+Inf"}'] == 2
    assert parsed["latency_seconds_count"]["latency_seconds_count"] == 2


def test_parse_rejects_malformed_lines():
    with pytest.raises(ConfigurationError):
        parse_prometheus("not a metric line at all and no value")
    with pytest.raises(ConfigurationError):
        parse_prometheus('bad{unclosed="x" 3')


def test_registry_is_thread_safe():
    registry = MetricsRegistry()

    def hammer():
        for _ in range(1000):
            registry.inc("c")
            registry.observe("h", 1.0)

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert registry.value("c") == 8000
    assert registry.histogram("h").total_count == 8000


def test_reset_clears_series():
    registry = MetricsRegistry()
    registry.inc("c")
    registry.observe("h", 1.0)
    registry.reset()
    assert registry.series_names() == []
