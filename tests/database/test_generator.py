"""Unit tests for the synthetic data generator."""

import random

import pytest

from repro.database.generator import (
    PatientGenerator,
    PatientProfile,
    plan_matching_peers,
)


class TestPatientGenerator:
    def test_paper_example_relation_matches_table1(self):
        relation = PatientGenerator().paper_example_relation()
        assert len(relation) == 3
        ages = [record["age"] for record in relation]
        assert ages == [15, 20, 18]
        assert relation.records[0]["disease"] == "anorexia"

    def test_records_count_and_unique_ids(self):
        generator = PatientGenerator(seed=3)
        records = generator.records(50)
        assert len(records) == 50
        assert len({record["id"] for record in records}) == 50

    def test_records_respect_profile_ranges(self):
        profile = PatientProfile(
            age_range=(10, 12), bmi_range=(15, 16), sexes=("female",), diseases=("anorexia",)
        )
        records = PatientGenerator(seed=1).records(30, profile=profile)
        assert all(10 <= record["age"] <= 12 for record in records)
        assert all(15 <= record["bmi"] <= 16 for record in records)
        assert all(record["sex"] == "female" for record in records)
        assert all(record["disease"] == "anorexia" for record in records)

    def test_reproducibility_with_same_seed(self):
        first = PatientGenerator(seed=42).records(10)
        second = PatientGenerator(seed=42).records(10)
        assert first == second

    def test_relation_and_database_builders(self):
        generator = PatientGenerator(seed=5)
        relation = generator.relation(10)
        assert len(relation) == 10
        database = generator.database(8)
        assert database.total_records() == 8
        assert database.background is generator.background

    def test_disease_weights(self):
        profile = PatientProfile(
            diseases=("anorexia", "malaria"), weights={"anorexia": 100.0, "malaria": 0.0001}
        )
        records = PatientGenerator(seed=2).records(40, profile=profile)
        anorexia = sum(1 for record in records if record["disease"] == "anorexia")
        assert anorexia >= 35


class TestMatchingPlan:
    def test_fraction_of_matching_peers(self):
        plan = plan_matching_peers(100, 0.1, random.Random(0))
        matching = [entry for entry in plan if entry.matches]
        assert len(matching) == 10

    def test_at_least_one_when_fraction_positive(self):
        plan = plan_matching_peers(5, 0.01, random.Random(0))
        assert sum(1 for entry in plan if entry.matches) == 1

    def test_zero_fraction_matches_nobody(self):
        plan = plan_matching_peers(10, 0.0, random.Random(0))
        assert not any(entry.matches for entry in plan)

    def test_invalid_fraction_raises(self):
        with pytest.raises(ValueError):
            plan_matching_peers(10, 1.5, random.Random(0))

    def test_full_fraction_matches_everyone(self):
        plan = plan_matching_peers(10, 1.0, random.Random(0))
        assert all(entry.matches for entry in plan)
