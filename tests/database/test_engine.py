"""Unit tests for the local database engine."""

import pytest

from repro.database.engine import LocalDatabase
from repro.database.query import Comparison, DescriptorPredicate, SelectionQuery
from repro.database.schema import patient_schema
from repro.exceptions import QueryError, SchemaError
from repro.fuzzy.linguistic import Descriptor


@pytest.fixture
def database(background):
    database = LocalDatabase(background=background)
    database.create_relation(
        "patient",
        patient_schema(),
        [
            {"id": "t1", "age": 15, "sex": "female", "bmi": 17, "disease": "anorexia"},
            {"id": "t2", "age": 20, "sex": "male", "bmi": 20, "disease": "malaria"},
            {"id": "t3", "age": 18, "sex": "female", "bmi": 16.5, "disease": "anorexia"},
        ],
    )
    return database


class TestDDL:
    def test_create_and_lookup(self, database):
        assert "patient" in database
        assert database.relation("patient").name == "patient"

    def test_create_duplicate_raises(self, database):
        with pytest.raises(SchemaError):
            database.create_relation("patient", patient_schema())

    def test_drop(self, database):
        database.drop_relation("patient")
        assert "patient" not in database

    def test_drop_unknown_raises(self, database):
        with pytest.raises(SchemaError):
            database.drop_relation("missing")

    def test_relation_names(self, database):
        assert database.relation_names == ["patient"]


class TestState:
    def test_total_records(self, database):
        assert database.total_records() == 3

    def test_version_changes_on_insert(self, database):
        before = database.version()
        database.insert("patient", {"id": "t4", "age": 40})
        assert database.version() == before + 1

    def test_insert_many(self, database):
        added = database.insert_many(
            "patient", [{"id": "t5", "age": 1}, {"id": "t6", "age": 2}]
        )
        assert added == 2
        assert database.total_records() == 5


class TestQueries:
    def test_crisp_selection(self, database):
        query = SelectionQuery(
            "patient",
            [Comparison("sex", "=", "female"), Comparison("bmi", "<", 19)],
            select=["age"],
        )
        rows = database.execute(query)
        assert sorted(row["age"] for row in rows) == [15, 18]

    def test_projection_star(self, database):
        query = SelectionQuery("patient", [Comparison("id", "=", "t2")])
        rows = database.execute(query)
        assert rows[0]["disease"] == "malaria"

    def test_projection_unknown_attribute_raises(self, database):
        query = SelectionQuery("patient", [], select=["height"])
        with pytest.raises(QueryError):
            database.execute(query)

    def test_descriptor_predicate_uses_background(self, database):
        query = SelectionQuery(
            "patient",
            [DescriptorPredicate("bmi", [Descriptor("bmi", "underweight")])],
            select=["id"],
        )
        rows = database.execute(query)
        assert {row["id"] for row in rows} == {"t1", "t3"}

    def test_descriptor_predicate_without_background_falls_back_to_labels(self):
        database = LocalDatabase()
        database.create_relation(
            "patient",
            patient_schema(),
            [{"id": "t1", "sex": "female"}],
        )
        query = SelectionQuery(
            "patient", [DescriptorPredicate("sex", [Descriptor("sex", "female")])]
        )
        assert database.count_matches(query) == 1

    def test_count_matches(self, database):
        query = SelectionQuery("patient", [Comparison("disease", "=", "anorexia")])
        assert database.count_matches(query) == 2

    def test_has_match_true_and_false(self, database):
        matching = SelectionQuery("patient", [Comparison("age", "<", 16)])
        missing = SelectionQuery("patient", [Comparison("age", ">", 90)])
        assert database.has_match(matching)
        assert not database.has_match(missing)

    def test_has_match_on_unknown_relation_is_false(self, database):
        query = SelectionQuery("unknown", [Comparison("age", "<", 16)])
        assert not database.has_match(query)

    def test_execute_on_unknown_relation_raises(self, database):
        query = SelectionQuery("unknown", [])
        with pytest.raises(SchemaError):
            database.execute(query)
