"""Unit tests for schemas and attribute types."""

import pytest

from repro.database.schema import Attribute, AttributeType, Schema, patient_schema
from repro.exceptions import SchemaError


class TestAttributeType:
    def test_integer_validation(self):
        assert AttributeType.INTEGER.validates(5)
        assert not AttributeType.INTEGER.validates(5.5)
        assert not AttributeType.INTEGER.validates(True)
        assert AttributeType.INTEGER.validates(None)

    def test_float_validation_accepts_int(self):
        assert AttributeType.FLOAT.validates(5)
        assert AttributeType.FLOAT.validates(5.5)
        assert not AttributeType.FLOAT.validates("5.5")

    def test_text_validation(self):
        assert AttributeType.TEXT.validates("hello")
        assert not AttributeType.TEXT.validates(5)

    def test_boolean_validation(self):
        assert AttributeType.BOOLEAN.validates(True)
        assert not AttributeType.BOOLEAN.validates("yes")

    def test_coerce_integer(self):
        assert AttributeType.INTEGER.coerce("42") == 42

    def test_coerce_float(self):
        assert AttributeType.FLOAT.coerce("3.5") == 3.5

    def test_coerce_boolean_strings(self):
        assert AttributeType.BOOLEAN.coerce("true") is True
        assert AttributeType.BOOLEAN.coerce("no") is False

    def test_coerce_none_passthrough(self):
        assert AttributeType.INTEGER.coerce(None) is None

    def test_coerce_failure_raises(self):
        with pytest.raises(SchemaError):
            AttributeType.INTEGER.coerce("not a number")
        with pytest.raises(SchemaError):
            AttributeType.BOOLEAN.coerce("maybe")


class TestAttribute:
    def test_validate_accepts_matching_value(self):
        Attribute("age", AttributeType.FLOAT).validate(21.5)

    def test_validate_rejects_wrong_type(self):
        with pytest.raises(SchemaError):
            Attribute("age", AttributeType.FLOAT).validate("old")

    def test_non_nullable_rejects_none(self):
        with pytest.raises(SchemaError):
            Attribute("id", AttributeType.TEXT, nullable=False).validate(None)

    def test_nullable_accepts_none(self):
        Attribute("note", AttributeType.TEXT).validate(None)


class TestSchema:
    def test_attribute_names_in_order(self):
        schema = patient_schema()
        assert schema.attribute_names == ["id", "age", "sex", "bmi", "disease"]

    def test_attribute_lookup(self):
        schema = patient_schema()
        assert schema.attribute("age").type is AttributeType.FLOAT

    def test_unknown_attribute_raises(self):
        with pytest.raises(SchemaError):
            patient_schema().attribute("height")

    def test_contains_and_len(self):
        schema = patient_schema()
        assert "bmi" in schema
        assert "height" not in schema
        assert len(schema) == 5

    def test_duplicate_names_raise(self):
        with pytest.raises(SchemaError):
            Schema(
                [
                    Attribute("a", AttributeType.TEXT),
                    Attribute("a", AttributeType.TEXT),
                ]
            )

    def test_empty_schema_raises(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_validate_record_normalises_missing_to_none(self):
        schema = patient_schema()
        record = schema.validate_record({"id": "t1", "age": 20})
        assert record["sex"] is None
        assert record["age"] == 20

    def test_validate_record_rejects_unknown_attribute(self):
        with pytest.raises(SchemaError):
            patient_schema().validate_record({"id": "t1", "height": 180})

    def test_validate_record_rejects_missing_required(self):
        with pytest.raises(SchemaError):
            patient_schema().validate_record({"age": 20})

    def test_project(self):
        projected = patient_schema().project(["age", "bmi"])
        assert projected.attribute_names == ["age", "bmi"]

    def test_project_unknown_raises(self):
        with pytest.raises(SchemaError):
            patient_schema().project(["height"])

    def test_from_types(self):
        schema = Schema.from_types(
            {"x": AttributeType.FLOAT, "y": AttributeType.TEXT}, non_nullable=["x"]
        )
        assert not schema.attribute("x").nullable
        assert schema.attribute("y").nullable
