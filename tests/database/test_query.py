"""Unit tests for the selection-query AST."""

import pytest

from repro.database.query import (
    AttributeIn,
    Comparison,
    DescriptorPredicate,
    SelectionQuery,
)
from repro.exceptions import QueryError
from repro.fuzzy.linguistic import Descriptor


class TestComparison:
    def test_equality_operator(self):
        predicate = Comparison("sex", "=", "female")
        assert predicate.matches({"sex": "female"})
        assert not predicate.matches({"sex": "male"})

    def test_all_operators(self):
        record = {"age": 20}
        assert Comparison("age", "<", 25).matches(record)
        assert Comparison("age", "<=", 20).matches(record)
        assert Comparison("age", ">", 10).matches(record)
        assert Comparison("age", ">=", 20).matches(record)
        assert Comparison("age", "!=", 30).matches(record)
        assert Comparison("age", "==", 20).matches(record)

    def test_missing_attribute_never_matches(self):
        assert not Comparison("age", "<", 25).matches({"bmi": 20})

    def test_none_value_never_matches(self):
        assert not Comparison("age", "<", 25).matches({"age": None})

    def test_type_mismatch_never_matches(self):
        assert not Comparison("age", "<", 25).matches({"age": "twenty"})

    def test_unknown_operator_raises(self):
        with pytest.raises(QueryError):
            Comparison("age", "~", 25)

    def test_attribute_property_and_str(self):
        predicate = Comparison("age", "<", 25)
        assert predicate.attribute == "age"
        assert "age" in str(predicate)


class TestAttributeIn:
    def test_matches_member(self):
        predicate = AttributeIn("disease", ["anorexia", "malaria"])
        assert predicate.matches({"disease": "malaria"})
        assert not predicate.matches({"disease": "flu"})

    def test_empty_values_raise(self):
        with pytest.raises(QueryError):
            AttributeIn("disease", [])

    def test_str_rendering(self):
        predicate = AttributeIn("disease", ["anorexia"])
        assert "disease" in str(predicate)


class TestDescriptorPredicate:
    def test_requires_matching_attribute(self):
        with pytest.raises(QueryError):
            DescriptorPredicate("bmi", [Descriptor("age", "young")])

    def test_requires_non_empty_descriptors(self):
        with pytest.raises(QueryError):
            DescriptorPredicate("bmi", [])

    def test_crisp_fallback_matching(self):
        predicate = DescriptorPredicate("sex", [Descriptor("sex", "female")])
        assert predicate.matches({"sex": "female"})
        assert not predicate.matches({"sex": "male"})

    def test_matches_with_background(self, background):
        predicate = DescriptorPredicate(
            "bmi", [Descriptor("bmi", "underweight"), Descriptor("bmi", "normal")]
        )
        assert predicate.matches_with_background({"bmi": 16}, background)
        assert predicate.matches_with_background({"bmi": 22}, background)
        assert not predicate.matches_with_background({"bmi": 35}, background)

    def test_alpha_cut(self, background):
        predicate = DescriptorPredicate(
            "age", [Descriptor("age", "adult")], alpha_cut=0.5
        )
        # age 20 is only 0.3 adult, below the 0.5 cut
        assert not predicate.matches_with_background({"age": 20}, background)
        assert predicate.matches_with_background({"age": 40}, background)

    def test_labels_property(self):
        predicate = DescriptorPredicate(
            "bmi", [Descriptor("bmi", "normal"), Descriptor("bmi", "underweight")]
        )
        assert set(predicate.labels) == {"normal", "underweight"}


class TestSelectionQuery:
    def test_matches_conjunction(self):
        query = SelectionQuery(
            "patient",
            [Comparison("sex", "=", "female"), Comparison("bmi", "<", 19)],
        )
        assert query.matches({"sex": "female", "bmi": 17})
        assert not query.matches({"sex": "female", "bmi": 25})

    def test_empty_predicates_match_everything(self):
        query = SelectionQuery("patient")
        assert query.matches({"anything": 1})

    def test_is_flexible(self):
        crisp = SelectionQuery("patient", [Comparison("bmi", "<", 19)])
        flexible = SelectionQuery(
            "patient", [DescriptorPredicate("bmi", [Descriptor("bmi", "normal")])]
        )
        assert not crisp.is_flexible()
        assert flexible.is_flexible()

    def test_constrained_attributes(self):
        query = SelectionQuery(
            "patient",
            [Comparison("sex", "=", "female"), Comparison("bmi", "<", 19)],
        )
        assert query.constrained_attributes == ["sex", "bmi"]

    def test_descriptor_predicates_filter(self):
        query = SelectionQuery(
            "patient",
            [
                Comparison("sex", "=", "female"),
                DescriptorPredicate("bmi", [Descriptor("bmi", "normal")]),
            ],
        )
        assert len(query.descriptor_predicates()) == 1

    def test_str_rendering(self):
        query = SelectionQuery(
            "patient", [Comparison("bmi", "<", 19)], select=["age"]
        )
        rendered = str(query)
        assert "select age from patient" in rendered
        assert "bmi < 19" in rendered
