"""Unit tests for relations and records."""

import pytest

from repro.database.schema import patient_schema
from repro.database.table import Record, Relation
from repro.exceptions import SchemaError


@pytest.fixture
def relation():
    return Relation(
        "patient",
        patient_schema(),
        [
            {"id": "t1", "age": 15, "sex": "female", "bmi": 17, "disease": "anorexia"},
            {"id": "t2", "age": 20, "sex": "male", "bmi": 20, "disease": "malaria"},
        ],
    )


class TestRecord:
    def test_mapping_interface(self):
        record = Record(patient_schema(), {"id": "t1", "age": 30})
        assert record["age"] == 30
        assert "bmi" in record
        assert len(record) == 5

    def test_as_dict(self):
        record = Record(patient_schema(), {"id": "t1", "age": 30})
        values = record.as_dict()
        assert values["id"] == "t1"
        assert values["disease"] is None

    def test_equality_with_mapping(self):
        record = Record(patient_schema(), {"id": "t1"})
        assert record == record.as_dict()

    def test_hashable(self):
        record = Record(patient_schema(), {"id": "t1"})
        assert len({record, Record(patient_schema(), {"id": "t1"})}) == 1

    def test_schema_violation_raises(self):
        with pytest.raises(SchemaError):
            Record(patient_schema(), {"id": "t1", "age": "twenty"})


class TestRelation:
    def test_len_and_iter(self, relation):
        assert len(relation) == 2
        assert [record["id"] for record in relation] == ["t1", "t2"]

    def test_insert_increments_version(self, relation):
        version = relation.version
        relation.insert({"id": "t3", "age": 40})
        assert relation.version == version + 1
        assert len(relation) == 3

    def test_insert_many(self, relation):
        count = relation.insert_many(
            [{"id": "t3", "age": 40}, {"id": "t4", "age": 50}]
        )
        assert count == 2
        assert len(relation) == 4

    def test_insert_validates_schema(self, relation):
        with pytest.raises(SchemaError):
            relation.insert({"id": "t9", "unknown": 1})

    def test_delete(self, relation):
        removed = relation.delete(lambda record: record["sex"] == "male")
        assert removed == 1
        assert len(relation) == 1

    def test_delete_no_match_does_not_bump_version(self, relation):
        version = relation.version
        removed = relation.delete(lambda record: record["age"] == 999)
        assert removed == 0
        assert relation.version == version

    def test_update(self, relation):
        updated = relation.update(lambda record: record["id"] == "t1", {"age": 16})
        assert updated == 1
        assert relation.records[0]["age"] == 16

    def test_update_unknown_attribute_raises(self, relation):
        with pytest.raises(SchemaError):
            relation.update(lambda record: True, {"height": 1})

    def test_select(self, relation):
        females = relation.select(lambda record: record["sex"] == "female")
        assert len(females) == 1
        assert females[0]["id"] == "t1"

    def test_project(self, relation):
        rows = relation.project(["id", "age"])
        assert rows == [{"id": "t1", "age": 15}, {"id": "t2", "age": 20}]

    def test_project_unknown_attribute_raises(self, relation):
        with pytest.raises(SchemaError):
            relation.project(["height"])

    def test_records_returns_copy(self, relation):
        records = relation.records
        records.clear()
        assert len(relation) == 2
