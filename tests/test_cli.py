"""Unit tests for the experiment CLI."""

import json

import pytest

from repro.cli import build_parser, main


class TestArgumentParsing:
    def test_requires_a_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
        capsys.readouterr()

    def test_unknown_command_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])
        capsys.readouterr()

    def test_defaults(self):
        args = build_parser().parse_args(["tables"])
        assert args.hours == 6.0
        assert args.seed == 0
        assert not args.json


class TestCommands:
    def test_tables_command_text_output(self, capsys):
        exit_code = main(["tables"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Tables 1 & 2" in captured.out
        assert "Table 3" in captured.out

    def test_tables_command_json_output(self, capsys):
        exit_code = main(["tables", "--json"])
        captured = capsys.readouterr()
        assert exit_code == 0
        first_line_block = captured.out.strip().split("\n{")[0]
        payload = json.loads(first_line_block)
        assert payload["name"].startswith("Tables 1 & 2")

    def test_fig6_command_with_small_overrides(self, capsys):
        exit_code = main(["fig6", "--sizes", "16,32", "--hours", "1", "--seed", "3"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Figure 6" in captured.out

    def test_fig7_command_with_small_overrides(self, capsys):
        exit_code = main(["fig7", "--sizes", "16,32", "--queries", "3"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Figure 7" in captured.out

    def test_invalid_sizes_rejected(self, capsys):
        with pytest.raises((SystemExit, Exception)):
            main(["fig6", "--sizes", "sixteen"])
        capsys.readouterr()
