"""Unit tests for the experiment CLI."""

import json

import pytest

from repro.cli import build_parser, main


class TestArgumentParsing:
    def test_requires_a_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
        capsys.readouterr()

    def test_unknown_command_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])
        capsys.readouterr()

    def test_defaults(self):
        args = build_parser().parse_args(["tables"])
        # hours/seed stay unset so run-scenario can fall back to the
        # scenario's own declaration; figure commands resolve them to 6 h / 0.
        assert args.hours is None
        assert args.seed is None
        assert not args.json


class TestCommands:
    def test_tables_command_text_output(self, capsys):
        exit_code = main(["tables"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Tables 1 & 2" in captured.out
        assert "Table 3" in captured.out

    def test_tables_command_json_output(self, capsys):
        exit_code = main(["tables", "--json"])
        captured = capsys.readouterr()
        assert exit_code == 0
        first_line_block = captured.out.strip().split("\n{")[0]
        payload = json.loads(first_line_block)
        assert payload["name"].startswith("Tables 1 & 2")

    def test_fig6_command_with_small_overrides(self, capsys):
        exit_code = main(["fig6", "--sizes", "16,32", "--hours", "1", "--seed", "3"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Figure 6" in captured.out

    def test_fig7_command_with_small_overrides(self, capsys):
        exit_code = main(["fig7", "--sizes", "16,32", "--queries", "3"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Figure 7" in captured.out

    def test_invalid_sizes_rejected(self, capsys):
        with pytest.raises((SystemExit, Exception)):
            main(["fig6", "--sizes", "sixteen"])
        capsys.readouterr()


class TestScenarioCommands:
    def test_list_scenarios(self, capsys):
        exit_code = main(["list-scenarios"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "table3-default" in captured.out
        assert "smoke" in captured.out

    def test_run_scenario_smoke(self, capsys):
        exit_code = main(
            ["run-scenario", "smoke", "--queries", "3", "--hours", "1", "--seed", "2"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Scenario 'smoke'" in captured.out
        assert "mean_query_messages" in captured.out

    def test_run_scenario_json(self, capsys):
        exit_code = main(
            ["run-scenario", "smoke", "--queries", "2", "--hours", "1", "--json"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        payload = json.loads(captured.out)
        assert payload["rows"][0]["queries"] == 2

    def test_run_scenario_with_overrides(self, capsys):
        exit_code = main(
            [
                "run-scenario",
                "smoke",
                "--peers",
                "24",
                "--alpha",
                "0.5",
                "--queries",
                "2",
                "--hours",
                "1",
                "--json",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        payload = json.loads(captured.out)
        assert payload["rows"][0]["peers"] == 24
        assert payload["parameters"]["alpha"] == 0.5

    def test_run_scenario_defaults_to_scenario_horizon(self, capsys):
        """Without --hours, the scenario's own declared duration is used."""
        exit_code = main(["run-scenario", "smoke", "--queries", "1", "--json"])
        captured = capsys.readouterr()
        assert exit_code == 0
        payload = json.loads(captured.out)
        assert payload["rows"][0]["simulated_hours"] == 1.0  # smoke declares 1 h

    def test_run_scenario_requires_a_name(self, capsys):
        with pytest.raises(SystemExit):
            main(["run-scenario"])
        capsys.readouterr()

    def test_run_scenario_unknown_name_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["run-scenario", "no-such-scenario"])
        captured = capsys.readouterr()
        assert "unknown scenario" in captured.err

    def test_stray_scenario_argument_rejected_for_other_commands(self, capsys):
        with pytest.raises(SystemExit):
            main(["tables", "stray-arg"])
        captured = capsys.readouterr()
        assert "only run-scenario" in captured.err


class TestStoreCommands:
    def test_save_load_roundtrip_sqlite(self, tmp_path, capsys):
        store = str(tmp_path / "runs.sqlite")
        exit_code = main(
            ["save-session", "smoke", "--store", store, "--name", "snap", "--json"]
        )
        saved = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert saved["rows"][0]["checkpoint"] == "snap"
        assert saved["rows"][0]["bytes"] > 0

        exit_code = main(
            ["load-session", "--store", store, "--name", "snap",
             "--queries", "2", "--json"]
        )
        loaded = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert loaded["rows"][0]["queries"] == 2
        assert loaded["rows"][0]["peers"] == saved["rows"][0]["peers"]

    def test_save_session_mid_run_and_inspect(self, tmp_path, capsys):
        """--hours checkpoints *inside* the horizon; load-session continues it."""
        store = str(tmp_path / "runs")
        exit_code = main(
            ["save-session", "smoke", "--store", store, "--hours", "0.5", "--json"]
        )
        saved = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert saved["rows"][0]["at_hours"] == pytest.approx(0.5)

        exit_code = main(["inspect-store", "--store", store, "--json"])
        inspected = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        kinds = {row["kind"] for row in inspected["rows"]}
        assert "checkpoint" in kinds

        # The interrupted-and-continued run matches the uninterrupted one:
        # load-session resumes at 0.5 h, runs to the smoke horizon (1 h) and
        # reports the same figures as a direct run-scenario.
        exit_code = main(["run-scenario", "smoke", "--queries", "3", "--json"])
        direct = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        exit_code = main(
            ["load-session", "--store", store, "--queries", "3", "--json"]
        )
        continued = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert continued["rows"][0]["simulated_hours"] == pytest.approx(1.0)
        for column in (
            "mean_results",
            "mean_query_messages",
            "mean_worst_stale_fraction",
            "push_messages",
            "reconciliations",
            "query_messages_total",
        ):
            assert continued["rows"][0][column] == direct["rows"][0][column]

    def test_delta_checkpoint_gc_restore_roundtrip(self, tmp_path, capsys):
        """checkpoint → delta → gc → restore, end to end through the CLI."""
        store = str(tmp_path / "runs.sqlite")
        main(
            ["save-session", "smoke", "--store", store, "--name", "base",
             "--hours", "0.25", "--json"]
        )
        capsys.readouterr()

        exit_code = main(
            ["save-session", "smoke", "--store", store, "--name", "tip",
             "--base", "base", "--hours", "0.5", "--json"]
        )
        tip = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert tip["rows"][0]["base"] == "base"
        assert tip["rows"][0]["at_hours"] == pytest.approx(0.5)
        # The delta document itself is smaller than the full base document.
        from repro.store import CHECKPOINT_KIND, SqliteBackend

        with SqliteBackend(store) as backend:
            assert backend.size_bytes(CHECKPOINT_KIND, "tip") < backend.size_bytes(
                CHECKPOINT_KIND, "base"
            )

        exit_code = main(["inspect-store", "--store", store, "--gc", "--json"])
        inspected = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        by_key = {(row["kind"], row["key"]): row for row in inspected["rows"]}
        assert by_key[("checkpoint", "tip")]["details"] == "delta of base"
        assert by_key[("checkpoint", "base")]["details"] == "full checkpoint"
        assert "reclaimed 0" in by_key[("gc", "report")]["details"]

        exit_code = main(
            ["load-session", "--store", store, "--name", "tip",
             "--queries", "3", "--json"]
        )
        continued = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        # The restored delta continues to the smoke horizon like a direct run.
        exit_code = main(["run-scenario", "smoke", "--queries", "3", "--json"])
        direct = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        for column in ("mean_results", "push_messages", "reconciliations"):
            assert continued["rows"][0][column] == direct["rows"][0][column]

    def test_inspect_store_compact_folds_delta_chains(self, tmp_path, capsys):
        store = str(tmp_path / "runs.sqlite")
        main(
            ["save-session", "smoke", "--store", store, "--name", "base",
             "--hours", "0.25", "--json"]
        )
        main(
            ["save-session", "smoke", "--store", store, "--name", "tip",
             "--base", "base", "--hours", "0.5", "--json"]
        )
        capsys.readouterr()

        exit_code = main(["inspect-store", "--store", store, "--compact", "--json"])
        inspected = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        by_key = {(row["kind"], row["key"]): row for row in inspected["rows"]}
        assert "tip" in by_key[("compact", "report")]["details"]
        assert by_key[("checkpoint", "tip")]["details"] == "full checkpoint"

        # The compacted tip still loads (now without its former base).
        from repro.store import CHECKPOINT_KIND, SqliteBackend

        with SqliteBackend(store) as backend:
            backend.delete(CHECKPOINT_KIND, "base")
        exit_code = main(
            ["load-session", "--store", store, "--name", "tip",
             "--queries", "2", "--json"]
        )
        assert exit_code == 0
        capsys.readouterr()

    def test_delta_against_missing_base_is_a_clean_error(self, tmp_path, capsys):
        store = str(tmp_path / "runs")
        with pytest.raises(SystemExit):
            main(
                ["save-session", "smoke", "--store", store, "--name", "tip",
                 "--base", "never-saved"]
            )
        assert "no checkpoint 'never-saved'" in capsys.readouterr().err

    def test_gc_dry_run_reports_without_deleting(self, tmp_path, capsys):
        store = str(tmp_path / "runs")
        main(["save-session", "smoke", "--store", store, "--name", "keep"])
        capsys.readouterr()
        exit_code = main(
            ["inspect-store", "--store", store, "--gc-dry-run", "--json"]
        )
        inspected = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        gc_rows = [row for row in inspected["rows"] if row["kind"] == "gc"]
        assert len(gc_rows) == 1
        assert "would reclaim" in gc_rows[0]["details"]

    def test_load_session_matches_run_scenario(self, tmp_path, capsys):
        """A saved-then-loaded scenario reports the same figures as a direct run."""
        exit_code = main(
            ["run-scenario", "smoke", "--queries", "3", "--seed", "5", "--json"]
        )
        direct = json.loads(capsys.readouterr().out)
        assert exit_code == 0

        store = str(tmp_path / "runs.sqlite")
        main(["save-session", "smoke", "--store", store, "--seed", "5", "--json"])
        capsys.readouterr()
        exit_code = main(
            ["load-session", "--store", store, "--queries", "3", "--json"]
        )
        loaded = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        for column in (
            "mean_results",
            "mean_query_messages",
            "mean_worst_stale_fraction",
            "push_messages",
            "reconciliations",
            "query_messages_total",
        ):
            assert loaded["rows"][0][column] == direct["rows"][0][column]

    def test_run_scenario_cache_dir_produces_identical_output(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        args = ["run-scenario", "smoke", "--queries", "2", "--json",
                "--cache-dir", cache]
        assert main(args) == 0
        cold = json.loads(capsys.readouterr().out)
        assert main(args) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["rows"] == cold["rows"]

    def test_store_commands_require_store_flag(self, capsys):
        for command in (["save-session", "smoke"], ["load-session"],
                        ["inspect-store"]):
            with pytest.raises(SystemExit):
                main(command)
            assert "--store" in capsys.readouterr().err

    def test_load_unknown_checkpoint_rejected(self, tmp_path, capsys):
        store = str(tmp_path / "empty.sqlite")
        main(["save-session", "smoke", "--store", store, "--name", "exists"])
        capsys.readouterr()
        with pytest.raises(SystemExit):
            main(["load-session", "--store", store, "--name", "missing"])
        assert "exists" in capsys.readouterr().err
