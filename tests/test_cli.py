"""Unit tests for the experiment CLI."""

import json

import pytest

from repro.cli import build_parser, main


class TestArgumentParsing:
    def test_requires_a_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
        capsys.readouterr()

    def test_unknown_command_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])
        capsys.readouterr()

    def test_defaults(self):
        args = build_parser().parse_args(["tables"])
        # hours/seed stay unset so run-scenario can fall back to the
        # scenario's own declaration; figure commands resolve them to 6 h / 0.
        assert args.hours is None
        assert args.seed is None
        assert not args.json


class TestCommands:
    def test_tables_command_text_output(self, capsys):
        exit_code = main(["tables"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Tables 1 & 2" in captured.out
        assert "Table 3" in captured.out

    def test_tables_command_json_output(self, capsys):
        exit_code = main(["tables", "--json"])
        captured = capsys.readouterr()
        assert exit_code == 0
        first_line_block = captured.out.strip().split("\n{")[0]
        payload = json.loads(first_line_block)
        assert payload["name"].startswith("Tables 1 & 2")

    def test_fig6_command_with_small_overrides(self, capsys):
        exit_code = main(["fig6", "--sizes", "16,32", "--hours", "1", "--seed", "3"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Figure 6" in captured.out

    def test_fig7_command_with_small_overrides(self, capsys):
        exit_code = main(["fig7", "--sizes", "16,32", "--queries", "3"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Figure 7" in captured.out

    def test_invalid_sizes_rejected(self, capsys):
        with pytest.raises((SystemExit, Exception)):
            main(["fig6", "--sizes", "sixteen"])
        capsys.readouterr()


class TestScenarioCommands:
    def test_list_scenarios(self, capsys):
        exit_code = main(["list-scenarios"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "table3-default" in captured.out
        assert "smoke" in captured.out

    def test_run_scenario_smoke(self, capsys):
        exit_code = main(
            ["run-scenario", "smoke", "--queries", "3", "--hours", "1", "--seed", "2"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Scenario 'smoke'" in captured.out
        assert "mean_query_messages" in captured.out

    def test_run_scenario_json(self, capsys):
        exit_code = main(
            ["run-scenario", "smoke", "--queries", "2", "--hours", "1", "--json"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        payload = json.loads(captured.out)
        assert payload["rows"][0]["queries"] == 2

    def test_run_scenario_with_overrides(self, capsys):
        exit_code = main(
            [
                "run-scenario",
                "smoke",
                "--peers",
                "24",
                "--alpha",
                "0.5",
                "--queries",
                "2",
                "--hours",
                "1",
                "--json",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        payload = json.loads(captured.out)
        assert payload["rows"][0]["peers"] == 24
        assert payload["parameters"]["alpha"] == 0.5

    def test_run_scenario_defaults_to_scenario_horizon(self, capsys):
        """Without --hours, the scenario's own declared duration is used."""
        exit_code = main(["run-scenario", "smoke", "--queries", "1", "--json"])
        captured = capsys.readouterr()
        assert exit_code == 0
        payload = json.loads(captured.out)
        assert payload["rows"][0]["simulated_hours"] == 1.0  # smoke declares 1 h

    def test_run_scenario_requires_a_name(self, capsys):
        with pytest.raises(SystemExit):
            main(["run-scenario"])
        capsys.readouterr()

    def test_run_scenario_unknown_name_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["run-scenario", "no-such-scenario"])
        captured = capsys.readouterr()
        assert "unknown scenario" in captured.err

    def test_stray_scenario_argument_rejected_for_other_commands(self, capsys):
        with pytest.raises(SystemExit):
            main(["tables", "stray-arg"])
        captured = capsys.readouterr()
        assert "only run-scenario" in captured.err
