"""A medical collaboration over a superpeer P2P network (real content).

The scenario the paper's introduction motivates: hospitals share patient
databases in a P2P network; a doctor asks for *"the age of female patients
diagnosed with anorexia and having an underweight or normal BMI"*.

The whole stack is declared in one ``SystemBuilder`` expression:

1. a power-law overlay of 48 hospital peers (BRITE substitute),
2. per-peer Patient databases and local summaries (``.real_content``),
3. superpeer domains with merged global summaries (construction protocol),
4. summary-based query routing with message accounting — one
   ``session.query(...)`` call returns a ``QueryAnswer`` bundling the routing
   result *and* the approximate answer computed entirely in the summary
   domain, no raw record shipped.

Run with:  python examples/medical_collaboration.py
"""

from __future__ import annotations

from repro import SystemBuilder, medical_background_knowledge
from repro.core.approximate import answer_in_domain
from repro.network.overlay import Overlay
from repro.network.topology import TopologyConfig
from repro.workloads.patients import MedicalWorkload, build_peer_databases
from repro.workloads.queries import paper_example_query


def main() -> None:
    # -- 1. one declarative expression builds the whole network -----------------
    overlay = Overlay.generate(TopologyConfig(peer_count=48, average_degree=4, seed=7))
    background = medical_background_knowledge()
    workload = MedicalWorkload(records_per_peer=10, matching_fraction=0.2, seed=7)
    databases = build_peer_databases(overlay.peer_ids, workload)

    session = (
        SystemBuilder()
        .topology(overlay)
        .background(background)
        .protocol(superpeer_fraction=1 / 12, construction_ttl=3)
        .real_content(databases)
        .seed(7)
        .build()
    )

    print(f"overlay: {session.overlay.size} peers, average degree "
          f"{session.overlay.average_degree():.2f}")
    total_records = sum(db.total_records() for db in databases.values())
    print(f"databases: {len(databases)} peers, {total_records} patient records")

    # -- 2. domains and global summaries (built by .build()) ---------------------
    report = session.construction_report
    assert report is not None
    print(f"domains: {report.domain_count} summary peers, "
          f"{report.messages.total} construction messages")
    for sp_id, domain in session.domains.items():
        size = domain.global_summary.node_count() if domain.has_global_summary() else 0
        print(f"  domain {sp_id}: {len(domain.partner_ids)} partners, "
              f"global summary of {size} nodes "
              f"(~{domain.global_summary.size_bytes() if domain.has_global_summary() else 0} bytes)")

    # -- 3. one query, one typed answer -------------------------------------------
    query = paper_example_query()
    print(f"\nquery: {query}")
    ground_truth = {p for p, db in databases.items() if db.has_match(query)}
    print(f"ground truth: {len(ground_truth)} hospitals hold matching patients")

    answer = session.query(query=query)
    print(f"summary routing from {answer.originator}:")
    print(f"  domains visited    : {answer.domains_visited}")
    print(f"  peers contacted    : {len(answer.contacted_peers)} "
          f"(out of {session.overlay.size})")
    print(f"  matching responses : {answer.results}")
    print(f"  false positives    : {answer.false_positive_rate:.1%}")
    print(f"  false negatives    : {answer.false_negative_rate:.1%}")
    print(f"  messages exchanged : {answer.total_messages}")

    # -- 4. the approximate answer rides along in the QueryAnswer -------------------
    if answer.answer is not None and not answer.answer.is_empty:
        labels = sorted(answer.answer.merged_output().get("age", frozenset()))
        print(f"\napproximate answer (no raw record accessed): matching "
              f"patients are {labels} "
              f"(~{answer.answer.total_tuple_count():.1f} records described)")

    # Per-domain breakdown, straight from the session's domains.
    print("\napproximate answers per domain:")
    for sp_id, domain in session.domains.items():
        if not domain.has_global_summary():
            continue
        domain_answer = answer_in_domain(domain, query, background).answer
        if domain_answer.is_empty:
            continue
        labels = sorted(domain_answer.merged_output().get("age", frozenset()))
        print(f"  domain {sp_id}: matching patients are {labels} "
              f"(~{domain_answer.total_tuple_count():.1f} records described)")


if __name__ == "__main__":
    main()
