"""A medical collaboration over a superpeer P2P network (real content).

The scenario the paper's introduction motivates: hospitals share patient
databases in a P2P network; a doctor asks for *"the age of female patients
diagnosed with anorexia and having an underweight or normal BMI"*.

The script builds the full stack:

1. a power-law overlay of 48 hospital peers (BRITE substitute),
2. per-peer Patient databases and local summaries,
3. superpeer domains with merged global summaries (construction protocol),
4. summary-based query routing (peer localization) with message accounting,
5. the approximate answer computed entirely in the summary domain.

Run with:  python examples/medical_collaboration.py
"""

from __future__ import annotations

from repro import ProtocolConfig, SummaryManagementSystem, medical_background_knowledge
from repro.core.approximate import answer_in_domain
from repro.network.overlay import Overlay
from repro.network.topology import TopologyConfig
from repro.workloads.patients import MedicalWorkload, build_peer_databases
from repro.workloads.queries import paper_example_query


def main() -> None:
    # -- 1. overlay -------------------------------------------------------------
    overlay = Overlay.generate(TopologyConfig(peer_count=48, average_degree=4, seed=7))
    print(f"overlay: {overlay.size} peers, average degree "
          f"{overlay.average_degree():.2f}")

    # -- 2. databases and local summaries ----------------------------------------
    background = medical_background_knowledge()
    config = ProtocolConfig(superpeer_fraction=1 / 12, construction_ttl=3)
    system = SummaryManagementSystem(overlay, config=config, background=background, seed=7)

    workload = MedicalWorkload(records_per_peer=10, matching_fraction=0.2, seed=7)
    databases = build_peer_databases(overlay.peer_ids, workload)
    system.attach_databases(databases)
    total_records = sum(db.total_records() for db in databases.values())
    print(f"databases: {len(databases)} peers, {total_records} patient records")

    # -- 3. domains and global summaries ------------------------------------------
    report = system.build_domains()
    print(f"domains: {report.domain_count} summary peers, "
          f"{report.messages.total} construction messages")
    for sp_id, domain in system.domains.items():
        size = domain.global_summary.node_count() if domain.has_global_summary() else 0
        print(f"  domain {sp_id}: {len(domain.partner_ids)} partners, "
              f"global summary of {size} nodes "
              f"(~{domain.global_summary.size_bytes() if domain.has_global_summary() else 0} bytes)")

    # -- 4. query routing ----------------------------------------------------------
    query = paper_example_query()
    print(f"\nquery: {query}")
    ground_truth = {p for p, db in databases.items() if db.has_match(query)}
    print(f"ground truth: {len(ground_truth)} hospitals hold matching patients")

    originator = next(iter(system.assignment))
    result = system.pose_query(originator, query=query)
    print(f"summary routing from {originator}:")
    print(f"  domains visited    : {result.domains_visited}")
    print(f"  peers contacted    : {len(result.contacted_peers)} "
          f"(out of {overlay.size})")
    print(f"  matching responses : {result.results}")
    print(f"  false positives    : {result.false_positive_rate:.1%}")
    print(f"  false negatives    : {result.false_negative_rate:.1%}")
    print(f"  messages exchanged : {result.total_messages}")

    # -- 5. approximate answering ----------------------------------------------------
    print("\napproximate answers per domain (no raw records shipped):")
    for sp_id, domain in system.domains.items():
        if not domain.has_global_summary():
            continue
        answer = answer_in_domain(domain, query, background).answer
        if answer.is_empty:
            continue
        labels = sorted(answer.merged_output().get("age", frozenset()))
        print(f"  domain {sp_id}: matching patients are {labels} "
              f"(~{answer.total_tuple_count():.1f} records described)")


if __name__ == "__main__":
    main()
