"""Quickstart: summarize a relational table, then query a whole network.

Walks the paper's running example end to end:

1. the Patient relation of Table 1,
2. its fuzzy grid-cell mapping (Table 2),
3. the summary hierarchy built by the SaintEtiQ-style engine (Figure 3),
4. query reformulation (Section 5.1),
5. a full P2P network declared with ``SystemBuilder`` and queried through the
   ``NetworkSession`` façade: one ``session.query(...)`` call routes the query
   with the SQ algorithm and returns a typed ``QueryAnswer`` carrying the
   routing outcome, the message cost and the approximate answer —
   *"female anorexia patients with an underweight or normal BMI are young"* —
   computed without touching a raw record; a follow-up ``query_batch`` poses
   several queries through the indexed, memoized, shared-work query engine —
   byte-identical to posing them one by one,
6. persistence through ``repro.store``: the session is checkpointed into a
   single SQLite file and resumed with ``SystemBuilder.from_checkpoint`` —
   the resumed session answers the same query byte-identically, and repeated
   runs warm-start from the checkpoint instead of rebuilding summaries,
7. serving: the checkpoint is opened *read-only* with lazy hierarchy loading
   and served over HTTP/JSON (``repro serve`` / ``start_server``); a client
   query comes back byte-identical to a local restore of the same checkpoint,
8. fault injection: a seeded ``FaultPlan`` partitions the network mid-run;
   queries keep working and come back *marked* — every answer carries a
   ``DegradationReport`` naming the domains that could not be reached, and
   after the scheduled heal answers are complete again,
9. observing a run: an opt-in ``Observability`` (metrics registry +
   structured tracing) is installed on the session; queries then record
   counters and span trees without changing any answer — the same registry
   the serve daemon exposes on ``/metrics`` and ``/trace``.

``SystemBuilder`` is the supported way to wire the system; constructing
``SummaryManagementSystem`` and calling ``attach_databases`` /
``build_domains`` by hand still works but is deprecated.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro import (
    FaultPlan,
    PartitionEvent,
    PatientGenerator,
    SummaryHierarchy,
    SystemBuilder,
    medical_background_knowledge,
    open_store,
    reformulate,
)
from repro.network.overlay import Overlay
from repro.network.topology import TopologyConfig
from repro.saintetiq.mapping import MappingService
from repro.workloads.patients import MedicalWorkload, build_peer_databases
from repro.workloads.queries import paper_example_query


def show_table_1(relation) -> None:
    print("Table 1 — raw Patient data")
    print(f"{'id':>4} {'age':>5} {'sex':>8} {'bmi':>6} {'disease':>10}")
    for record in relation:
        print(
            f"{record['id']:>4} {record['age']:>5} {record['sex']:>8} "
            f"{record['bmi']:>6} {record['disease']:>10}"
        )
    print()


def show_table_2(cells) -> None:
    print("Table 2 — grid-cell mapping (age x bmi)")
    print(f"{'cell':>5} {'age':>8} {'bmi':>13} {'tuple count':>12}")
    ordered = sorted(cells.values(), key=lambda cell: -cell.tuple_count)
    for index, cell in enumerate(ordered, start=1):
        description = cell.describe()
        print(
            f"{'c' + str(index):>5} {description['age']:>8} "
            f"{description['bmi']:>13} {cell.tuple_count:>12.2f}"
        )
    print()


def show_hierarchy(hierarchy: SummaryHierarchy) -> None:
    print("Summary hierarchy (Figure 3)")

    def render(node, indent=0):
        intent = "; ".join(
            f"{attribute}={{{', '.join(sorted(labels))}}}"
            for attribute, labels in sorted(node.intent.items())
        )
        print(f"{'  ' * indent}- count={node.tuple_count:.2f}  [{intent}]")
        for child in node.children:
            render(child, indent + 1)

    render(hierarchy.root)
    print()


def main() -> None:
    background = medical_background_knowledge()
    generator = PatientGenerator(seed=0, background=background)
    relation = generator.paper_example_relation()
    show_table_1(relation)

    # -- mapping service: records -> grid cells (Table 2) ----------------------
    numeric_background = medical_background_knowledge(include_categorical=False)
    mapping = MappingService(numeric_background, attributes=["age", "bmi"])
    cells = mapping.map_records([r.as_dict() for r in relation], peer="hospital-1")
    show_table_2(cells)

    # -- summarization service: cells -> hierarchy (Figure 3) ------------------
    hierarchy = SummaryHierarchy(
        numeric_background, attributes=["age", "bmi"], owner="hospital-1"
    )
    hierarchy.add_records(r.as_dict() for r in relation)
    show_hierarchy(hierarchy)

    # -- query reformulation (Section 5.1) --------------------------------------
    crisp = paper_example_query()
    flexible = reformulate(crisp, background)
    print("Query reformulation")
    print(f"  crisp   : {crisp}")
    print(f"  flexible: {flexible}")
    print()

    # -- a whole network in one declarative expression ---------------------------
    # 16 hospitals, each owning a small Patient database; local summaries,
    # domains and global summaries are built by .build().
    overlay = Overlay.generate(TopologyConfig(peer_count=16, average_degree=4, seed=5))
    workload = MedicalWorkload(records_per_peer=8, matching_fraction=0.25, seed=5)
    databases = build_peer_databases(overlay.peer_ids, workload)
    session = (
        SystemBuilder()
        .topology(overlay)
        .background(background)
        .protocol(superpeer_fraction=1 / 8, construction_ttl=3)
        .real_content(databases)
        .seed(5)
        .build()
    )
    print(f"network: {session.overlay.size} hospitals in "
          f"{len(session.domains)} summary domains")

    # -- one call: route the query and answer it approximately --------------------
    answer = session.query(query=crisp)
    print(f"query posed at {answer.originator}:")
    print(f"  peers contacted    : {len(answer.contacted_peers)} "
          f"(out of {session.overlay.size})")
    print(f"  matching responses : {answer.results}")
    print(f"  messages exchanged : {answer.total_messages}")
    if answer.answer is not None and not answer.answer.is_empty:
        merged = answer.answer.merged_output()
        print(f"  => patients with an underweight or normal BMI are "
              f"{sorted(merged.get('age', frozenset()))}")
    print()

    # -- heavy query traffic: the batched query engine ----------------------------
    # query_batch shares the per-query derivation work — domain visit orders,
    # the incrementally tracked online-peer set, each hierarchy's inverted
    # descriptor index and selection memo — across the whole batch, while
    # staying byte-identical to posing the queries one by one.  Repeated query
    # classes against unchanged summaries are answered from the caches.
    batch = session.query_batch(queries=[crisp] * 5)
    print(f"batched query engine: {len(batch)} repeated queries, "
          f"{sum(a.total_messages for a in batch)} messages total, "
          f"results per query {[a.results for a in batch]}")
    print()

    # -- checkpoint the whole session, resume it byte-identically -----------------
    # A store is a directory of JSON files or (here) one SQLite file; local and
    # global summaries are stored content-addressed, so identical hierarchies
    # are persisted exactly once however many checkpoints reference them.
    store_path = Path(tempfile.mkdtemp()) / "quickstart.sqlite"
    session.checkpoint(str(store_path), name="quickstart")
    started = time.perf_counter()
    resumed = SystemBuilder.from_checkpoint(
        str(store_path), name="quickstart", background=background
    )
    restore_ms = 1000 * (time.perf_counter() - started)
    resumed_answer = resumed.query(query=crisp)
    print(f"checkpoint/restore: resumed from {store_path.name} "
          f"in {restore_ms:.0f} ms (no summary reconstruction)")
    print(f"  resumed session answers identically: "
          f"{resumed_answer.routing == session.query(query=crisp).routing}")

    # -- delta checkpoints, GC and domain cold starts ------------------------------
    # A second checkpoint taken as a delta persists only what changed since
    # the base (the two queries above advanced counters and RNG state); the
    # chain restores transparently.  gc() reclaims snapshots nothing
    # references any more.
    with open_store(str(store_path)) as store:
        session.checkpoint(store, name="quickstart-later", base="quickstart")
        delta_bytes = store.size_bytes("checkpoint", "quickstart-later")
        full_bytes = store.size_bytes("checkpoint", "quickstart")
        print(f"delta checkpoint: {delta_bytes} B vs {full_bytes} B full "
              f"({delta_bytes / full_bytes:.0%})")
        report = store.gc()
        print(f"gc: {report.deleted_count} unreachable snapshots reclaimed, "
              f"{report.live} live")

        # Store-backed cold start: with a store attached, reconciliations
        # archive each domain's head; a restarted summary peer then installs
        # its global summary by hash lookup and pulls only the partners that
        # changed since, instead of re-merging every local summary.
        session.attach_store(store)
        system = session.system
        for sp_id, domain in system.domains.items():
            system.maintenance.reconcile(
                domain, local_summaries=system.local_summaries()
            )
        sp_id = max(session.domains, key=lambda d: len(session.domains[d].partner_ids))
        record = session.cold_start_domain(sp_id)
        print(f"cold start of {sp_id}: restored from snapshot "
              f"{str(record.restored_snapshot)[:12]}..., "
              f"{record.messages} ring messages instead of {record.full_messages}")
        # The session keeps using an attached store: detach before the
        # with-block closes the backend.
        session.detach_store()
    print()

    # -- serve a checkpoint over HTTP ----------------------------------------------
    # `repro serve` (or start_server, in-process) opens the checkpoint
    # *read-only*: one shared session answers query/staleness requests from
    # many concurrent clients, rolling its bookkeeping back after each request
    # so every answer is byte-identical to a fresh restore.  Hierarchies load
    # lazily — only the domains the queries touch are materialized.
    from repro import open_readonly_session
    from repro.serve import ServeClient, start_server

    readonly = open_readonly_session(
        str(store_path), name="quickstart", background=background
    )
    server = start_server(readonly, close_session_on_stop=True)
    client = ServeClient(server.url)
    served = client.query(query=crisp)
    fresh = SystemBuilder.from_checkpoint(
        str(store_path), name="quickstart", background=background
    )
    lazy_stats = client.stats()["lazy"]
    print(f"serve: daemon on {server.url} answering from the checkpoint")
    print(f"  served answer == local restore : {served == fresh.query(query=crisp)}")
    print(f"  hierarchies materialized       : {lazy_stats['fetches']} "
          f"(lazy; only what the query touched)")
    client.shutdown()   # responds, then stops the daemon cleanly
    server.join(timeout=10.0)
    print()

    # -- fault injection: partitions, degraded-but-marked answers ------------------
    # A FaultPlan splits the overlay in half at t=60s and heals it at t=600s.
    # Mid-partition, queries still return — the DegradationReport names the
    # domains the originator could not reach, so a partial answer is never
    # mistaken for a complete one.  The empty plan is byte-identical to no
    # plan at all, so fault-free results are untouched.
    plan = FaultPlan(
        seed=9, partitions=[PartitionEvent(at=60.0, fraction=0.5, heal_at=600.0)]
    )
    stormy = (
        SystemBuilder()
        .topology(peer_count=32, average_degree=4)
        .planned_content(hit_rate=0.25)
        .faults(plan)
        .seed(9)
        .build()
    )
    stormy.run_until(120.0)
    # Pose the query from a peer the split actually cut off from some domain
    # (whether the *default* originator is cut off depends on where the seeded
    # split landed it).
    faults = stormy.system.faults
    cut_off = next(
        p
        for p in stormy.system.overlay.peer_ids
        if any(not faults.reachable(p, sp) for sp in stormy.system.domains)
    )
    mid = stormy.query(cut_off)
    report = mid.degradation
    print("fault injection: network split in two halves at t=60s")
    print(f"  mid-partition answer complete : {report.complete}")
    print(f"  unreachable domains           : {sorted(report.unreachable_domains)}")
    print(f"  probe messages charged        : {report.probe_messages}")
    stormy.run_until(700.0)
    healed = stormy.query()
    print(f"  after heal, answer complete   : {healed.degradation.complete}")
    print()

    # -- observing a run: metrics registry + structured tracing --------------------
    # Observability is opt-in and read-only over the protocol: installing it
    # changes no answer, no counter, no RNG draw (the identity suite pins this
    # byte-for-byte).  detail=True additionally records per-domain routing and
    # hierarchy-selection spans; metrics are always on once installed.
    from repro import Observability, span_tree

    obs = Observability.with_ring(detail=True)
    stormy.install_observability(obs)
    watched = stormy.query_batch(count=5)
    stormy.system.counter.to_metrics(obs.metrics)  # bridge message totals
    metrics = obs.metrics
    per_domain = metrics.histogram("repro_routing_messages_per_domain")
    roots = [s for s in obs.ring.spans() if s.name == "query"]
    children = span_tree(obs.ring.spans())
    print("observability: metrics + spans recorded, answers untouched")
    print(f"  queries recorded        : {metrics.value('repro_queries_total'):.0f}"
          f" (answered {sum(a.results for a in watched)} results)")
    print(f"  msgs/domain histogram   : n={per_domain.total_count}, "
          f"mean={per_domain.total_sum / per_domain.total_count:.1f}")
    print(f"  bridged message series  : "
          f"{len(metrics.counter_series('repro_messages_total'))} message types")
    print(f"  span tree of query #1   : "
          f"{len(children.get(roots[0].span_id, []))} routing spans under "
          f"'{roots[0].name}'")
    print(f"  /metrics exposition     : "
          f"{len(metrics.render_prometheus().splitlines())} lines of "
          f"Prometheus text format")
    print()

    # -- choosing a runtime: pluggable execution backends ---------------------------
    # Every session schedules through an ExecutionBackend.  The default
    # "simulator" drains events serially in one thread; "concurrent" overlaps
    # I/O-shaped waits (given an io_model pricing event labels in wall-clock
    # seconds) on asyncio mailboxes while draining the *virtual* events in the
    # same strict order — so answers, counters and RNG draws stay byte-equal.
    # Select it per build (.runtime(...)), per scenario (runtime="concurrent"),
    # per CLI run (--runtime), or fleet-wide ($REPRO_RUNTIME).
    from repro.runtime import ConcurrentBackend, SimulatorBackend

    def io_model(label: str) -> float:
        # ~2ms of modelled network/disk wait per maintenance-shaped event.
        return 0.002 if label in ("modification", "departure", "rejoin") else 0.0

    def timed_run(runtime):
        session = (
            SystemBuilder()
            .topology(peer_count=32, average_degree=4)
            .planned_content(hit_rate=0.25)
            .modifications(1800.0, rate_per_peer_per_second=1.0 / 120.0)
            .runtime(runtime)
            .seed(3)
            .build()
        )
        started = time.perf_counter()
        session.run_until(1800.0)
        return time.perf_counter() - started, session.query_batch(count=3)

    serial_wall, serial_answers = timed_run(SimulatorBackend(io_model=io_model))
    overlap_wall, overlap_answers = timed_run(ConcurrentBackend(io_model=io_model))
    print("runtime: same run, two execution backends")
    print(f"  answers identical            : {serial_answers == overlap_answers}")
    print(f"  simulator (serial) wall      : {serial_wall:.3f}s")
    print(f"  concurrent (overlapped) wall : {overlap_wall:.3f}s")
    print()

    # -- supervised serving: a crash-safe multi-process fleet -----------------------
    # `repro serve --workers N` forks N worker *processes* (each its own
    # read-only restore of the checkpoint) behind one front port: the GIL no
    # longer caps throughput, and a worker crash costs nothing — the
    # supervisor retries the interrupted request on a live worker (safe:
    # answers are deterministic), restarts the dead one with capped backoff,
    # sheds load beyond --max-inflight with 503 + Retry-After, and fails
    # over-deadline requests typed instead of hanging.  An exact response
    # cache keyed by (canonical request, checkpoint digest) answers repeats
    # without touching a worker at all.
    from repro.serve import ChaosMonkey, Supervisor

    supervisor = Supervisor(
        str(store_path), name="quickstart", workers=2, background="medical"
    ).start()
    fleet = ServeClient(supervisor.url)
    fleet_answer = fleet.query(query=crisp)
    again = fleet.query(query=crisp)  # identical request: served from cache
    health = fleet.health()
    print(f"supervised serving: {health['workers_live']} worker processes "
          f"on {supervisor.url}")
    # `served` came from the single daemon and equalled a fresh local
    # restore; the fleet must answer identically again.
    print(f"  fleet answer == local restore : {fleet_answer == served}")
    print(f"  repeat hit the response cache : {health['cache']['hits'] >= 1} "
          f"(answers equal: {again == fleet_answer})")

    # Crash-safety, demonstrated: SIGKILL a worker mid-flight.  Completed
    # answers never change — the supervisor recovers the fleet underneath.
    killed = ChaosMonkey(supervisor, seed=1).kill_once()
    survived = fleet.query_batch(count=3)
    deadline = time.time() + 30.0
    while time.time() < deadline:
        health = fleet.health()
        if health["workers_live"] == 2 and health["restarts_total"] >= 1:
            break
        time.sleep(0.2)
    print(f"  SIGKILLed worker {killed} mid-run: answers kept flowing "
          f"({len(survived)} served), fleet back to "
          f"{health['workers_live']}/2 live after "
          f"{health['restarts_total']} restart(s)")
    fleet.shutdown()  # graceful drain: finish in-flight, then stop workers
    supervisor.join(timeout=30.0)


if __name__ == "__main__":
    main()
