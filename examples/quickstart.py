"""Quickstart: summarize a relational table and query the summary.

Reproduces the paper's running example end to end on a single peer:

1. the Patient relation of Table 1,
2. its fuzzy grid-cell mapping (Table 2),
3. the summary hierarchy built by the SaintEtiQ-style engine (Figure 3),
4. query reformulation (Section 5.1) and approximate answering (Section 5.2.2):
   *"female anorexia patients with an underweight or normal BMI are young"*.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    PatientGenerator,
    SummaryHierarchy,
    medical_background_knowledge,
    reformulate,
)
from repro.querying.aggregation import approximate_answer
from repro.querying.proposition import Proposition
from repro.querying.selection import select_summaries
from repro.database.query import SelectionQuery
from repro.saintetiq.mapping import MappingService
from repro.workloads.queries import paper_example_query


def show_table_1(relation) -> None:
    print("Table 1 — raw Patient data")
    print(f"{'id':>4} {'age':>5} {'sex':>8} {'bmi':>6} {'disease':>10}")
    for record in relation:
        print(
            f"{record['id']:>4} {record['age']:>5} {record['sex']:>8} "
            f"{record['bmi']:>6} {record['disease']:>10}"
        )
    print()


def show_table_2(cells) -> None:
    print("Table 2 — grid-cell mapping (age x bmi)")
    print(f"{'cell':>5} {'age':>8} {'bmi':>13} {'tuple count':>12}")
    ordered = sorted(cells.values(), key=lambda cell: -cell.tuple_count)
    for index, cell in enumerate(ordered, start=1):
        description = cell.describe()
        print(
            f"{'c' + str(index):>5} {description['age']:>8} "
            f"{description['bmi']:>13} {cell.tuple_count:>12.2f}"
        )
    print()


def show_hierarchy(hierarchy: SummaryHierarchy) -> None:
    print("Summary hierarchy (Figure 3)")

    def render(node, indent=0):
        intent = "; ".join(
            f"{attribute}={{{', '.join(sorted(labels))}}}"
            for attribute, labels in sorted(node.intent.items())
        )
        print(f"{'  ' * indent}- count={node.tuple_count:.2f}  [{intent}]")
        for child in node.children:
            render(child, indent + 1)

    render(hierarchy.root)
    print()


def main() -> None:
    background = medical_background_knowledge()
    generator = PatientGenerator(seed=0, background=background)
    relation = generator.paper_example_relation()
    show_table_1(relation)

    # -- mapping service: records -> grid cells (Table 2) ----------------------
    numeric_background = medical_background_knowledge(include_categorical=False)
    mapping = MappingService(numeric_background, attributes=["age", "bmi"])
    cells = mapping.map_records([r.as_dict() for r in relation], peer="hospital-1")
    show_table_2(cells)

    # -- summarization service: cells -> hierarchy (Figure 3) ------------------
    hierarchy = SummaryHierarchy(
        numeric_background, attributes=["age", "bmi"], owner="hospital-1"
    )
    hierarchy.add_records(r.as_dict() for r in relation)
    show_hierarchy(hierarchy)

    # A second hierarchy over every described attribute (age, bmi, sex,
    # disease) is what the query of Section 5 is evaluated against.
    full_hierarchy = SummaryHierarchy(background, owner="hospital-1")
    full_hierarchy.add_records(r.as_dict() for r in relation)

    # -- query reformulation (Section 5.1) --------------------------------------
    crisp = paper_example_query()
    flexible = reformulate(crisp, background)
    print("Query reformulation")
    print(f"  crisp   : {crisp}")
    print(f"  flexible: {flexible}")
    print()

    # -- approximate answering (Section 5.2.2) ----------------------------------
    flexible_only = SelectionQuery(
        "patient", flexible.descriptor_predicates(), select=["age"]
    )
    proposition = Proposition.from_query(flexible_only)
    selection = select_summaries(full_hierarchy, proposition)
    answer = approximate_answer(selection, proposition, select=["age"])
    print("Approximate answer (no raw record accessed)")
    print(f"  proposition: {proposition}")
    for answer_class in answer.classes:
        interpretation = {
            attribute: sorted(labels)
            for attribute, labels in answer_class.interpretation_dict().items()
        }
        outputs = {a: sorted(l) for a, l in answer_class.output.items()}
        print(
            f"  class {interpretation} -> {outputs} "
            f"(~{answer_class.tuple_count:.1f} records)"
        )
    merged = answer.merged_output()
    print(f"  => patients with an underweight or normal BMI are "
          f"{sorted(merged.get('age', frozenset()))}")


if __name__ == "__main__":
    main()
