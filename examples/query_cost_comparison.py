"""Query-cost comparison: summary querying vs. flooding vs. centralized index.

A miniature of the paper's Figure 7: the same planned workload (each query
matched by 10 % of the peers, total-lookup semantics) is answered by

* the summary-querying (SQ) algorithm of the paper,
* Gnutella-style flooding (TTL 3, expanded until the stop condition holds),
* an ideal centralized index (the lower bound),

over power-law networks of growing size; the per-query message counts and the
flooding/SQ ratio are printed, together with the analytical cost model values.

Each network is constructed through the ``"query-cost"`` entry of the
scenario registry (``SystemBuilder`` under the hood) by the shared
:func:`repro.experiments.runner.run_query_cost_comparison` driver.

Run with:  python examples/query_cost_comparison.py
"""

from __future__ import annotations

from repro.experiments.runner import run_query_cost_comparison

NETWORK_SIZES = (16, 100, 500, 1000, 2000)
QUERIES_PER_SIZE = 20


def main() -> None:
    header = (
        f"{'peers':>6} {'SQ':>10} {'flooding':>10} {'centralized':>12} "
        f"{'flooding/SQ':>12} {'SQ (model)':>12}"
    )
    print("average messages per query (lower is better)\n")
    print(header)
    print("-" * len(header))
    for size in NETWORK_SIZES:
        run = run_query_cost_comparison(
            peer_count=size, query_count=QUERIES_PER_SIZE, hit_rate=0.1, seed=1
        )
        ratio = (
            run.flooding_messages / run.summary_querying_messages
            if run.summary_querying_messages
            else float("inf")
        )
        print(
            f"{size:>6d} {run.summary_querying_messages:>10.1f} "
            f"{run.flooding_messages:>10.1f} {run.centralized_messages:>12.1f} "
            f"{ratio:>12.2f} {run.model_summary_querying_messages:>12.0f}"
        )
    print(
        "\nreading: the summary-based routing contacts only the peers whose"
        "\ndescriptions match the query, so it stays a small factor above the"
        "\nideal centralized index and several times below blind flooding."
    )


if __name__ == "__main__":
    main()
