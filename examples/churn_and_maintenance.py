"""Churn, freshness and the α trade-off (Sections 4.2, 4.3 and 6.2.2).

Simulates a single 300-peer domain for 12 hours of virtual time under the
paper's skewed lifetime distribution (mean 3 h, median 1 h), for several
values of the reconciliation threshold α, and reports:

* push / reconciliation traffic (total and per node),
* the worst-case fraction of stale answers (Figure 4),
* the real false-negative fraction under precision-first routing (Figure 5),
* the analytical prediction of the update-cost model (equation 1).

Run with:  python examples/churn_and_maintenance.py
"""

from __future__ import annotations

from repro.costmodel.update_cost import UpdateCostModel
from repro.experiments.runner import run_maintenance_simulation
from repro.workloads.registry import default_registry

DOMAIN_SIZE = 300
HOURS = 12.0
ALPHAS = (0.1, 0.3, 0.5, 0.8)


def main() -> None:
    print(f"single domain of {DOMAIN_SIZE} peers, {HOURS:.0f} h of virtual time,")
    print("lifetimes ~ log-normal (mean 3 h, median 1 h), one data modification")
    print("per peer every ~3 h on average\n")

    header = (
        f"{'alpha':>6} {'pushes':>8} {'reconciliations':>16} {'msgs/node':>10} "
        f"{'model msgs/node':>16} {'stale answers':>14} {'false negatives':>16}"
    )
    print(header)
    print("-" * len(header))

    registry = default_registry()
    for alpha in ALPHAS:
        scenario = registry.scenario(
            "maintenance",
            peer_count=DOMAIN_SIZE,
            alpha=alpha,
            duration_seconds=HOURS * 3600.0,
            seed=13,
        )
        run = run_maintenance_simulation(scenario)
        model = UpdateCostModel(
            domain_size=DOMAIN_SIZE,
            lifetime_seconds=scenario.lifetime_mean_seconds,
            alpha=alpha,
        )
        print(
            f"{alpha:>6.1f} {run.push_messages:>8d} {run.reconciliations:>16d} "
            f"{run.messages_per_node:>10.2f} "
            f"{model.messages_per_node(HOURS * 3600.0):>16.2f} "
            f"{run.mean_worst_stale_fraction:>13.1%} "
            f"{run.mean_real_false_negative_fraction:>15.1%}"
        )

    print(
        "\nreading: a small alpha keeps query answers fresh (few stale answers)"
        "\nat the price of more frequent reconciliations; a large alpha saves"
        "\nmaintenance traffic but lets stale descriptions accumulate."
    )


if __name__ == "__main__":
    main()
